// The canonical operator-family plans shared by the batch-equivalence sweeps
// (temporal_property_test.cc) and the columnar-agreement test
// (analysis_properties_test.cc): one small plan per operator family over a
// [K, V] int64 schema, including structured (spec-carrying) twins of the
// opaque select/project chains so both execution paths are exercised.
//
// Kept in one place so "the property-test plans" means the same set to every
// consumer — in particular, the analysis layer's columnar-eligibility
// prediction is asserted against the executor's observed ingest mode for
// exactly these plans.

#pragma once

#include <string>
#include <vector>

#include "temporal/query.h"

namespace timr::testutil {

inline Schema PropertyPlanSchema() {
  return Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
}

inline const std::vector<std::string>& PropertyPlanNames() {
  static const std::vector<std::string> kNames = {
      "select", "select_spec", "fused_chain", "fused_chain_spec", "hop",
      "group_agg", "join", "asj", "union"};
  return kNames;
}

/// Build the named plan. Dies on unknown names (programmer error).
inline temporal::Query MakePropertyPlan(const std::string& name) {
  using temporal::CmpOp;
  using temporal::ProjectExpr;
  using temporal::ProjectSpec;
  using temporal::Query;
  const Schema kv = PropertyPlanSchema();
  if (name == "select") {
    return Query::Input("S", kv).Where(
        [](const Row& r) { return r[1].AsInt64() > 25; });
  }
  if (name == "select_spec") {
    // Structured twin of "select": same filter as a SelectSpec, so the
    // columnar kernel (not the row closure) evaluates it when enabled.
    return Query::Input("S", kv).WhereCmp("V", CmpOp::kGt, Value(int64_t{25}));
  }
  if (name == "fused_chain_spec") {
    // Structured twin of "fused_chain": spec-carrying select + project so
    // the fused chain runs its columnar prefix end to end.
    ProjectSpec spec;
    spec.exprs.push_back(
        ProjectExpr::Arith("VK", 1, ProjectExpr::ArithOp::kAdd, 0));
    spec.exprs.push_back(ProjectExpr::Column("K", 0));
    return Query::Input("S", kv)
        .WhereCmp("V", CmpOp::kGt, Value(int64_t{10}))
        .Project(std::move(spec))
        .Window(17);
  }
  if (name == "fused_chain") {
    Schema out = Schema::Of({{"V", ValueType::kInt64}, {"K", ValueType::kInt64}});
    return Query::Input("S", kv)
        .Where([](const Row& r) { return r[1].AsInt64() > 10; })
        .Project([](const Row& r) { return Row{r[1], r[0]}; }, out)
        .Window(17);
  }
  if (name == "hop") {
    return Query::Input("S", kv).HoppingWindow(50, 10);
  }
  if (name == "group_agg") {
    return Query::Input("S", kv).GroupApply(
        {"K"}, [](Query g) { return g.Window(30).Count(); });
  }
  if (name == "join") {
    return Query::TemporalJoin(Query::Input("L", kv).Window(20),
                               Query::Input("R", kv).Window(30), {"K"}, {"K"});
  }
  if (name == "asj") {
    return Query::AntiSemiJoin(Query::Input("L", kv),
                               Query::Input("R", kv).Window(25), {"K"}, {"K"});
  }
  TIMR_CHECK(name == "union") << "unknown property plan: " << name;
  return Query::Union(Query::Input("L", kv), Query::Input("R", kv));
}

}  // namespace timr::testutil
