// Allocation regression guard for the batched stateless hot path.
//
// This TU replaces global operator new/delete with counting wrappers (gtest
// links them into this test binary only). The batched execution path promises
// a steady-state allocation budget that is O(1) per batch — pooled batch
// storage (temporal/event.cc), in-place FilterEvents rewrites, and move-into-
// last-sink Emit mean that pumping a warm Select→AlterLifetime chain does not
// allocate per event. The test pins that down with a hard ceiling so a future
// "harmless" copy on the hot path fails loudly instead of silently costing
// 2x throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "temporal/executor.h"
#include "temporal/query.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocations{0};

}  // namespace

// Counting global allocator. Deliberately malloc-based and exception-correct;
// all forms forward here so sized/aligned deallocations stay matched.
void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace timr::temporal {
namespace {

class AllocationScope {
 public:
  AllocationScope() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
  }
  ~AllocationScope() { g_counting.store(false, std::memory_order_relaxed); }
  uint64_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

EventBatch MakeBatch(size_t n, Timestamp start) {
  EventBatch batch;
  Timestamp t = start;
  for (size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) {
      ++t;
      batch.AddCti(t);
    }
    batch.Add(Event::Point(
        t, {Value(static_cast<int64_t>(i % 7)), Value(static_cast<int64_t>(i))}));
  }
  return batch;
}

TEST(AllocationGuard, StatelessBatchPathIsO1AllocationsPerBatch) {
  Schema kv = Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
  // A fusable stateless chain: filter + window. No payload is rebuilt, so a
  // warm pipeline should move rows end to end without touching the allocator.
  Query q = Query::Input("S", kv)
                .Where([](const Row& r) { return r[1].AsInt64() % 3 != 0; })
                .Window(100);
  auto exec = Executor::Create(q.node()).ValueOrDie();

  constexpr size_t kBatchEvents = 1024;
  constexpr int kWarmupBatches = 4;
  constexpr int kMeasuredBatches = 8;

  // Warm up: grows the thread-local batch pool, the collector vector, and any
  // operator-internal capacity to steady state.
  Timestamp t = 0;
  for (int i = 0; i < kWarmupBatches; ++i) {
    EventBatch batch = MakeBatch(kBatchEvents, t);
    t += kBatchEvents;
    TIMR_CHECK_OK(exec->PushBatch("S", std::move(batch)));
  }
  const size_t warm_output = exec->TakeOutput().size();
  ASSERT_GT(warm_output, 0u);

  // Measure: batches are built outside the counting window (building the
  // input legitimately allocates one Row per event); only the push — the
  // engine's work — is counted.
  uint64_t total = 0;
  for (int i = 0; i < kMeasuredBatches; ++i) {
    EventBatch batch = MakeBatch(kBatchEvents, t);
    t += kBatchEvents;
    AllocationScope scope;
    TIMR_CHECK_OK(exec->PushBatch("S", std::move(batch)));
    total += scope.count();
  }

  // O(1) per batch, emphatically not O(events): the collector's amortized
  // vector growth is the only allowed customer. 8 allocations per 1024-event
  // batch is two orders of magnitude below the per-event regime.
  EXPECT_LE(total, static_cast<uint64_t>(kMeasuredBatches) * 8)
      << "stateless batch path allocated " << total << " times over "
      << kMeasuredBatches << " batches of " << kBatchEvents << " events";
}

EventBatch MakeColumnarBatch(const Schema& schema, size_t n, Timestamp start) {
  EventBatch batch;
  batch.BeginColumnar(schema);
  Timestamp t = start;
  for (size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) {
      ++t;
      batch.AddCti(t);
    }
    const Row row = {Value(static_cast<int64_t>(i % 7)),
                     Value(static_cast<int64_t>(i % 5))};
    TIMR_CHECK(batch.TryAppendColumnar(t, t + kTick, row));
  }
  return batch;
}

TEST(AllocationGuard, ColumnarBatchPathIsO1AllocationsPerBatch) {
  Schema kv = Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
  // Structured filter + window: the fused chain evaluates the SelectSpec as a
  // selection bitmap, compacts columns in place, and rewrites timestamps —
  // all without materializing a single Row. Column buffers come from (and
  // return to) the pooled batch storage, so a warm pipeline stays O(1)
  // allocations per columnar batch too.
  Query q = Query::Input("S", kv)
                .WhereCmp("V", CmpOp::kNe, Value(int64_t{0}))
                .Window(100);
  auto exec = Executor::Create(q.node()).ValueOrDie();

  constexpr size_t kBatchEvents = 1024;
  constexpr int kWarmupBatches = 4;
  constexpr int kMeasuredBatches = 8;

  Timestamp t = 0;
  for (int i = 0; i < kWarmupBatches; ++i) {
    EventBatch batch = MakeColumnarBatch(kv, kBatchEvents, t);
    t += kBatchEvents;
    TIMR_CHECK_OK(exec->PushBatch("S", std::move(batch)));
  }
  const size_t warm_output = exec->TakeOutput().size();
  ASSERT_GT(warm_output, 0u);

  uint64_t total = 0;
  for (int i = 0; i < kMeasuredBatches; ++i) {
    EventBatch batch = MakeColumnarBatch(kv, kBatchEvents, t);
    t += kBatchEvents;
    AllocationScope scope;
    TIMR_CHECK_OK(exec->PushBatch("S", std::move(batch)));
    total += scope.count();
  }

  // Same budget as the row path: the validity bitmap (one vector per batch)
  // and amortized collector growth are the only allowed customers.
  EXPECT_LE(total, static_cast<uint64_t>(kMeasuredBatches) * 8)
      << "columnar batch path allocated " << total << " times over "
      << kMeasuredBatches << " batches of " << kBatchEvents << " events";
}

TEST(AllocationGuard, PerEventPathStillBoundedAfterWarmup) {
  // Companion guard for the unbatched path: Emit's move-into-last-sink means
  // a warm Select chain pushes a point event end to end with no allocations.
  Schema kv = Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
  Query q = Query::Input("S", kv)
                .Where([](const Row& r) { return r[1].AsInt64() % 3 != 0; })
                .Window(100);
  auto exec = Executor::Create(q.node()).ValueOrDie();

  for (int i = 0; i < 512; ++i) {
    TIMR_CHECK_OK(exec->PushEvent(
        "S", Event::Point(i, {Value(int64_t{1}), Value(int64_t{i})})));
  }
  (void)exec->TakeOutput();

  std::vector<Event> prebuilt;
  prebuilt.reserve(256);
  for (int i = 0; i < 256; ++i) {
    prebuilt.push_back(
        Event::Point(512 + i, {Value(int64_t{1}), Value(int64_t{i})}));
  }
  uint64_t total = 0;
  for (Event& e : prebuilt) {
    AllocationScope scope;
    TIMR_CHECK_OK(exec->PushEvent("S", std::move(e)));
    total += scope.count();
  }
  // Amortized collector growth only.
  EXPECT_LE(total, 16u) << "per-event stateless path allocated " << total
                        << " times over 256 events";
}

}  // namespace
}  // namespace timr::temporal
