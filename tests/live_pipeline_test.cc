// Tests for the §VII "M3 loop" execution mode: the same annotated fragments
// TiMR runs as offline map-reduce stages process a live feed incrementally
// with identical cumulative results.

#include <gtest/gtest.h>

#include "bt/queries.h"
#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "timr/live_pipeline.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr::framework {
namespace {

using temporal::Event;
using temporal::kHour;
using temporal::PartitionSpec;
using temporal::Query;
using temporal::SameTemporalRelation;

Schema ClickSchema() {
  return Schema::Of({{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
}

std::vector<Event> MakeClicks(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(Event::Point(
        rng.UniformInt(0, 24 * kHour),
        {Value(rng.UniformInt(1, 50)), Value(rng.UniformInt(1, 6))}));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.le < b.le; });
  return events;
}

Query TwoFragmentPlan() {
  // per-(user,ad) counts, repartitioned, per-ad max — two fragments.
  return Query::Input("ClickLog", ClickSchema())
      .Exchange(PartitionSpec::ByKeys({"UserId", "AdId"}))
      .GroupApply({"UserId", "AdId"},
                  [](Query g) { return g.Window(6 * kHour).Count("c"); })
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"AdId"}, [](Query g) {
        return g.Aggregate(temporal::AggregateSpec::Max("c", "m"));
      });
}

TEST(LivePipeline, MatchesOfflineTimrJob) {
  auto clicks = MakeClicks(1200, 3);
  Query plan = TwoFragmentPlan();

  mr::LocalCluster cluster(4, 2);
  auto offline = RunPlanOnEvents(&cluster, plan.node(),
                                 {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();

  auto live = LivePipeline::Create(plan.node());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live.ValueOrDie()->num_fragments(), 2u);
  for (const Event& e : clicks) {
    live.ValueOrDie()->PushCti(e.le);
    ASSERT_TRUE(live.ValueOrDie()->PushEvent("ClickLog", e).ok());
  }
  live.ValueOrDie()->Finish();

  EXPECT_TRUE(SameTemporalRelation(offline.ValueOrDie().output,
                                   live.ValueOrDie()->TakeOutput()));
}

TEST(LivePipeline, DeliversOutputIncrementally) {
  Query plan = Query::Input("ClickLog", ClickSchema())
                   .Exchange(PartitionSpec::ByKeys({"AdId"}))
                   .GroupApply({"AdId"}, [](Query g) {
                     return g.Window(100).Count();
                   });
  auto live = LivePipeline::Create(plan.node());
  ASSERT_TRUE(live.ok());

  size_t seen = 0;
  temporal::CallbackSink sink([&](const Event&) { ++seen; });
  live.ValueOrDie()->AddOutputSink(&sink);

  // Push events far apart: output for earlier windows must arrive before
  // Finish (low-latency, not batch-at-end).
  for (int i = 0; i < 10; ++i) {
    const temporal::Timestamp t = i * 1000;
    live.ValueOrDie()->PushCti(t);
    ASSERT_TRUE(live.ValueOrDie()
                    ->PushEvent("ClickLog", Event::Point(t, {Value(1), Value(1)}))
                    .ok());
  }
  EXPECT_GE(seen, 5u) << "results should stream out before end-of-feed";
  live.ValueOrDie()->Finish();
  EXPECT_EQ(seen, 10u);
}

TEST(LivePipeline, RunsTheFullBtFeaturePipeline) {
  workload::GeneratorConfig gen;
  gen.num_users = 150;
  gen.duration = 2 * temporal::kDay;
  auto log = workload::GenerateBtLog(gen);
  bt::BtQueryConfig cfg;
  cfg.selection_period = 3 * temporal::kDay;
  cfg.bot_search_threshold = 40;
  cfg.bot_click_threshold = 25;

  Query plan = bt::BtFeaturePipeline(cfg, bt::Annotation::kStandard);
  auto offline = temporal::Executor::Execute(
      bt::BtFeaturePipeline(cfg, bt::Annotation::kNone).node(),
      {{bt::kBtInput, log.events}});
  ASSERT_TRUE(offline.ok());

  auto live = LivePipeline::Create(plan.node());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  for (const Event& e : log.events) {
    live.ValueOrDie()->PushCti(e.le);
    ASSERT_TRUE(live.ValueOrDie()->PushEvent(bt::kBtInput, e).ok());
  }
  live.ValueOrDie()->Finish();
  EXPECT_TRUE(SameTemporalRelation(offline.ValueOrDie(),
                                   live.ValueOrDie()->TakeOutput()));
}

TEST(LivePipeline, UnknownSourceRejected) {
  auto live = LivePipeline::Create(TwoFragmentPlan().node());
  ASSERT_TRUE(live.ok());
  EXPECT_FALSE(
      live.ValueOrDie()->PushEvent("Nope", Event::Point(1, {Value(1), Value(1)}))
          .ok());
}

}  // namespace
}  // namespace timr::framework
