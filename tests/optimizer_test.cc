// Tests for the §VI cost-based annotation optimizer.

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "bt/queries.h"
#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/optimizer.h"
#include "timr/timr.h"

namespace timr::framework {
namespace {

using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::Query;

int CountExchanges(const temporal::PlanNodePtr& plan) {
  int n = 0;
  for (PlanNode* node : temporal::CollectNodes(plan)) {
    if (node->kind == OpKind::kExchange) ++n;
  }
  return n;
}

std::vector<PartitionSpec> Exchanges(const temporal::PlanNodePtr& plan) {
  std::vector<PartitionSpec> out;
  for (PlanNode* node : temporal::CollectNodes(plan)) {
    if (node->kind == OpKind::kExchange) out.push_back(node->exchange);
  }
  return out;
}

/// The optimizer's chosen placements must satisfy the static
/// exchange-placement invariants (analysis/plan_checks.h): the passes and the
/// optimizer encode the same paper rules, so a disagreement means one of them
/// drifted.
void ExpectPlacementValid(const temporal::PlanNodePtr& annotated) {
  analysis::AnalysisReport report =
      analysis::CheckExchangePlacement(annotated);
  EXPECT_EQ(report.ForCheck("exchange-placement").size(), 0u)
      << report.ToString();
  EXPECT_EQ(report.ForCheck("temporal-span").size(), 0u) << report.ToString();
  EXPECT_TRUE(analysis::AnalyzePlan(annotated).ToStatus().ok())
      << analysis::AnalyzePlan(annotated).ToString();
}

TEST(Optimizer, AnnotatesRunningClickCountWithAdId) {
  Schema s = Schema::Of(
      {{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
  Query q = Query::Input("ClickLog", s).GroupApply({"AdId"}, [](Query g) {
    return g.Window(100).Count();
  });
  PlanStats stats;
  stats.input_rows["ClickLog"] = 1e6;
  stats.distinct_values["AdId"] = 1e4;
  OptimizerOptions opts;
  auto res = OptimizeAnnotation(q.node(), stats, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto exchanges = Exchanges(res.ValueOrDie().annotated_plan);
  ASSERT_EQ(exchanges.size(), 1u);
  EXPECT_EQ(exchanges[0].keys, std::vector<std::string>{"AdId"});
  ExpectPlacementValid(res.ValueOrDie().annotated_plan);
}

// The paper's Example 3: GroupApply keyed {UserId, Keyword} feeding a join
// keyed {UserId}. The optimizer must choose one {UserId} exchange at the
// source rather than {UserId, Keyword} followed by a repartition to {UserId}.
TEST(Optimizer, ChoosesSingleFragmentForExample3) {
  Schema s = Schema::Of({{"UserId", ValueType::kInt64},
                         {"Keyword", ValueType::kInt64}});
  Query input = Query::Input("S", s);
  Query ubp = input.GroupApply({"UserId", "Keyword"}, [](Query g) {
    return g.Window(100).Count("c");
  });
  Query joined =
      Query::TemporalJoin(input, ubp, {"UserId"}, {"UserId"});

  PlanStats stats;
  stats.input_rows["S"] = 1e7;
  stats.distinct_values["UserId"] = 1e6;
  stats.distinct_values["Keyword"] = 1e5;
  OptimizerOptions opts;
  opts.machines = 100;
  auto res = OptimizeAnnotation(joined.node(), stats, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  const auto& plan = res.ValueOrDie().annotated_plan;
  for (const auto& e : Exchanges(plan)) {
    EXPECT_EQ(e.keys, std::vector<std::string>{"UserId"})
        << "unexpected exchange " << e.ToString();
  }
  // No repartitioning between the GroupApply and the join.
  auto frags = MakeFragments(plan);
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  EXPECT_EQ(frags.ValueOrDie().fragments.size(), 1u);
  ExpectPlacementValid(plan);
}

// A global (ungrouped) windowed aggregate has no payload key: the optimizer
// must fall back to temporal partitioning rather than a singleton plan when
// machines make parallelism worthwhile.
TEST(Optimizer, PicksTemporalPartitioningForGlobalAggregate) {
  Schema s = Schema::Of({{"V", ValueType::kInt64}});
  Query q = Query::Input("S", s).Window(600).Count();
  PlanStats stats;
  stats.input_rows["S"] = 1e8;
  OptimizerOptions opts;
  opts.machines = 64;
  auto res = OptimizeAnnotation(q.node(), stats, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto exchanges = Exchanges(res.ValueOrDie().annotated_plan);
  ASSERT_EQ(exchanges.size(), 1u);
  EXPECT_EQ(exchanges[0].kind, PartitionSpec::Kind::kTemporal);
  EXPECT_GE(exchanges[0].overlap, 600);
  ExpectPlacementValid(res.ValueOrDie().annotated_plan);
}

TEST(Optimizer, RejectsAlreadyAnnotatedPlan) {
  Schema s = Schema::Of({{"K", ValueType::kInt64}});
  Query q = Query::Input("S", s).Exchange(PartitionSpec::ByKeys({"K"}));
  auto res = OptimizeAnnotation(q.node(), PlanStats(), OptimizerOptions());
  EXPECT_FALSE(res.ok());
}

// The optimizer's annotation must execute correctly end to end.
TEST(Optimizer, AnnotatedPlanExecutesCorrectly) {
  Schema s = Schema::Of(
      {{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
  Query q = Query::Input("ClickLog", s).GroupApply({"AdId"}, [](Query g) {
    return g.Window(3600).Count();
  });
  Rng rng(5);
  std::vector<temporal::Event> clicks;
  for (int i = 0; i < 3000; ++i) {
    clicks.push_back(temporal::Event::Point(
        rng.UniformInt(0, 86400),
        {Value(rng.UniformInt(1, 50)), Value(rng.UniformInt(1, 8))}));
  }

  PlanStats stats;
  stats.input_rows["ClickLog"] = clicks.size();
  stats.distinct_values["AdId"] = 8;
  auto res = OptimizeAnnotation(q.node(), stats, OptimizerOptions());
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  auto single = temporal::Executor::Execute(q.node(), {{"ClickLog", clicks}});
  ASSERT_TRUE(single.ok());
  mr::LocalCluster cluster(8, 2);
  auto dist = RunPlanOnEvents(&cluster, res.ValueOrDie().annotated_plan,
                              {{"ClickLog", {s, clicks}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_TRUE(temporal::SameTemporalRelation(single.ValueOrDie(),
                                             dist.ValueOrDie().output));
}

// The full BT feature pipeline, annotated automatically, matches the
// hand-annotated plan's output.
TEST(Optimizer, AnnotatesBtPipeline) {
  auto plan = bt::BtFeaturePipeline(bt::BtQueryConfig(), bt::Annotation::kNone);
  PlanStats stats;
  stats.input_rows[bt::kBtInput] = 1e7;
  stats.distinct_values[bt::kColUserId] = 1e6;
  stats.distinct_values[bt::kColKwAdId] = 1e5;
  OptimizerOptions opts;
  opts.machines = 100;
  auto res = OptimizeAnnotation(plan.node(), stats, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GE(CountExchanges(res.ValueOrDie().annotated_plan), 1);
  // The annotation must at least be fragmentable (consistent keys), and its
  // placements must pass the static exchange-placement check.
  auto frags = MakeFragments(res.ValueOrDie().annotated_plan);
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  ExpectPlacementValid(res.ValueOrDie().annotated_plan);
  EXPECT_TRUE(
      analysis::CheckFragments(frags.ValueOrDie()).ToStatus().ok());
}

}  // namespace
}  // namespace timr::framework
