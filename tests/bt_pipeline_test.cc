// End-to-end BT pipeline tests: ground-truth recovery on the synthetic log,
// and three-way equivalence between single-node execution, TiMR on the
// map-reduce substrate, and the hand-written custom reducers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bt/custom_reducers.h"
#include "bt/evaluation.h"
#include "bt/model.h"
#include "bt/queries.h"
#include "bt/reduction.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "temporal/executor.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr::bt {
namespace {

using temporal::Event;
using temporal::Executor;
using temporal::Query;
using temporal::SameTemporalRelation;

workload::GeneratorConfig SmallConfig() {
  workload::GeneratorConfig cfg;
  cfg.num_users = 400;
  cfg.vocab_size = 3000;
  cfg.duration = 4 * temporal::kDay;
  cfg.searches_per_user_day = 12;
  cfg.impressions_per_user_day = 6;
  cfg.num_ad_classes = 4;
  return cfg;
}

BtQueryConfig SmallBtConfig() {
  BtQueryConfig cfg;
  // 4-day horizon; the selection window must cover it.
  cfg.selection_period = 5 * temporal::kDay;
  // Bots do ~25x of ~12 searches/day => ~75 searches per 6h window; normal
  // users stay far below this.
  cfg.bot_search_threshold = 40;
  cfg.bot_click_threshold = 25;
  return cfg;
}

const workload::BtLog& SharedLog() {
  static const workload::BtLog* log =
      new workload::BtLog(workload::GenerateBtLog(SmallConfig()));
  return *log;
}

TEST(Workload, BotsAreSmallButLoud) {
  const auto& log = SharedLog();
  size_t bot_clicks = 0, clicks = 0, bot_searches = 0, searches = 0;
  for (const Event& e : log.events) {
    const bool bot = log.truth.bot_users.count(e.payload[1].AsInt64()) > 0;
    if (e.payload[0].AsInt64() == kStreamClick) {
      ++clicks;
      if (bot) ++bot_clicks;
    } else if (e.payload[0].AsInt64() == kStreamKeyword) {
      ++searches;
      if (bot) ++bot_searches;
    }
  }
  const double user_share = static_cast<double>(log.truth.bot_users.size()) /
                            SmallConfig().num_users;
  const double click_share = static_cast<double>(bot_clicks) / clicks;
  // Paper §IV-B.1: 0.5% of users contributed 13% of clicks and searches.
  EXPECT_LT(user_share, 0.02);
  EXPECT_GT(click_share, 5 * user_share);
  EXPECT_GT(static_cast<double>(bot_searches) / searches, 2 * user_share);
}

// The user_activity_zipf knob: skewed logs are reproducible from the
// (seed, zipf_s) pair, concentrate activity on head user ids, and the mean-1
// weight normalization keeps total volume in the same ballpark.
TEST(Workload, UserActivityZipfSkewsAndIsReproducible) {
  workload::GeneratorConfig base = SmallConfig();
  base.bot_activity_multiplier = 1.0;  // isolate the Zipf profile
  base.bot_impression_multiplier = 1.0;

  workload::GeneratorConfig skewed = base;
  skewed.user_activity_zipf = 1.1;

  const auto a = workload::GenerateBtLog(skewed);
  const auto b = workload::GenerateBtLog(skewed);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    ASSERT_EQ(a.events[i].le, b.events[i].le) << "event " << i;
    ASSERT_EQ(a.events[i].re, b.events[i].re) << "event " << i;
    ASSERT_EQ(a.events[i].payload, b.events[i].payload) << "event " << i;
  }

  // Share of events owned by the first 5% of user ids (the Zipf head).
  auto head_share = [&](const workload::BtLog& log) {
    const int64_t head = base.num_users / 20;
    size_t head_events = 0;
    for (const Event& e : log.events) {
      if (e.payload[1].AsInt64() < head) ++head_events;
    }
    return static_cast<double>(head_events) / log.events.size();
  };
  const auto flat = workload::GenerateBtLog(base);
  EXPECT_GT(head_share(a), 3 * head_share(flat));

  EXPECT_GT(a.events.size(), flat.events.size() / 2);
  EXPECT_LT(a.events.size(), flat.events.size() * 2);
}

TEST(BotElimination, RemovesBotActivityKeepsNormalUsers) {
  const auto& log = SharedLog();
  Query q = BotElimination(BtInput(), SmallBtConfig());
  auto out = Executor::Execute(q.node(), {{kBtInput, log.events}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const auto& clean = out.ValueOrDie();
  ASSERT_LT(clean.size(), log.events.size());

  size_t bot_events_before = 0, bot_events_after = 0;
  for (const Event& e : log.events) {
    if (log.truth.bot_users.count(e.payload[1].AsInt64())) ++bot_events_before;
  }
  for (const Event& e : clean) {
    if (log.truth.bot_users.count(e.payload[1].AsInt64())) ++bot_events_after;
  }
  // Nearly all bot activity disappears (ramp-up before a bot crosses the
  // threshold may survive); normal users lose nothing.
  EXPECT_LT(bot_events_after, bot_events_before / 5);
  EXPECT_EQ(clean.size() - bot_events_after,
            log.events.size() - bot_events_before);
}

TEST(FeatureSelection, RecoversPlantedKeywordSigns) {
  const auto& log = SharedLog();
  BtQueryConfig cfg = SmallBtConfig();
  Query scores_q = BtFeaturePipeline(cfg, Annotation::kNone);
  auto out = Executor::Execute(scores_q.node(), {{kBtInput, log.events}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto scores = ScoresFromEvents(out.ValueOrDie());
  ASSERT_GT(scores.size(), 0u);

  // For each ad class, planted positive keywords that reached support must
  // have positive z, and planted negatives negative z.
  int pos_right = 0, pos_wrong = 0, neg_right = 0, neg_wrong = 0;
  for (const auto& s : scores) {
    if (!s.HasSupport() ||
        s.ad >= static_cast<int64_t>(log.truth.ad_classes.size())) {
      continue;
    }
    const auto& cls = log.truth.ad_classes[s.ad];
    if (cls.pos_keywords.count(s.keyword)) {
      (s.z > 0 ? pos_right : pos_wrong)++;
    } else if (cls.neg_keywords.count(s.keyword)) {
      (s.z < 0 ? neg_right : neg_wrong)++;
    }
  }
  EXPECT_GT(pos_right, 0);
  EXPECT_GT(neg_right, 0);
  // Allow a small number of sign flips from sampling noise.
  EXPECT_GT(pos_right, 5 * std::max(1, pos_wrong));
  EXPECT_GT(neg_right, 2 * std::max(1, neg_wrong));
}

TEST(BtPipeline, TimrMatchesSingleNode) {
  const auto& log = SharedLog();
  BtQueryConfig cfg = SmallBtConfig();

  auto single = Executor::Execute(
      BtFeaturePipeline(cfg, Annotation::kNone).node(), {{kBtInput, log.events}});
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  mr::LocalCluster cluster(8, 2);
  auto dist = framework::RunPlanOnEvents(
      &cluster, BtFeaturePipeline(cfg, Annotation::kStandard).node(),
      {{kBtInput, {UnifiedSchema(), log.events}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_GT(dist.ValueOrDie().fragments.fragments.size(), 2u);
  EXPECT_TRUE(SameTemporalRelation(single.ValueOrDie(),
                                   dist.ValueOrDie().output));
}

TEST(BtPipeline, CustomReducersMatchTemporalQueries) {
  const auto& log = SharedLog();
  BtQueryConfig cfg = SmallBtConfig();

  auto single = Executor::Execute(
      BtFeaturePipeline(cfg, Annotation::kNone).node(), {{kBtInput, log.events}});
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  mr::LocalCluster cluster(8, 2);
  std::map<std::string, mr::Dataset> store;
  auto rows = temporal::RowsFromEvents(log.events, /*interval_layout=*/false);
  ASSERT_TRUE(rows.ok());
  store[kBtInput] = mr::Dataset::FromRows(
      temporal::PointRowSchema(UnifiedSchema()), rows.ValueOrDie());
  auto custom = RunCustomBtJob(&cluster, &store, cfg);
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();

  // Compare as multisets of rounded score rows (the CQ output carries
  // lifetimes; the custom pipeline is offline-only and emits bare rows).
  auto canon = [](std::vector<Row> rows) {
    for (auto& r : rows) {
      r[6] = Value(std::round(r[6].AsDouble() * 1e9) / 1e9);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                return std::lexicographical_compare(a.begin(), a.end(),
                                                    b.begin(), b.end());
              });
    return rows;
  };
  std::vector<Row> cq_rows;
  for (const Event& e : single.ValueOrDie()) cq_rows.push_back(e.payload);
  EXPECT_EQ(canon(std::move(cq_rows)), canon(custom.ValueOrDie().feature_scores));
}

TEST(BtEndToEnd, KeZBeatsBaselinesAtLowCoverage) {
  const auto& log = SharedLog();
  BtQueryConfig cfg = SmallBtConfig();
  auto [train_events, test_events] = workload::SplitByTime(log.events);

  auto run = [&](const std::vector<Event>& events) {
    Query clean = BotElimination(BtInput(), cfg);
    Query train_q = GenTrainData(clean, cfg);
    return Executor::Execute(train_q.node(), {{kBtInput, events}});
  };
  auto train_rows = run(train_events);
  auto test_rows = run(test_events);
  ASSERT_TRUE(train_rows.ok());
  ASSERT_TRUE(test_rows.ok());

  auto scores_out = Executor::Execute(
      BtFeaturePipeline(cfg, Annotation::kNone).node(),
      {{kBtInput, train_events}});
  ASSERT_TRUE(scores_out.ok());
  auto scores = ScoresFromEvents(scores_out.ValueOrDie());

  auto train_ex = ExamplesFromTrainRows(train_rows.ValueOrDie());
  auto test_ex = ExamplesFromTrainRows(test_rows.ValueOrDie());
  ASSERT_GT(train_ex.size(), 100u);
  ASSERT_GT(test_ex.size(), 100u);

  const std::vector<int64_t> ads = {0, 1};
  auto kez = EvaluateScheme(ReductionScheme::KeZ("KE-1.28", scores, 1.28),
                            train_ex, test_ex, ads);
  auto pop = EvaluateScheme(ReductionScheme::KePop("KE-pop", scores, 10),
                            train_ex, test_ex, ads);

  for (int64_t ad : ads) {
    ASSERT_TRUE(kez.per_ad.count(ad));
    const auto& eval = kez.per_ad.at(ad);
    // At ~20% coverage KE-z must deliver positive lift.
    double best_low_cov_lift = 0;
    for (const auto& pt : eval.curve) {
      if (pt.coverage <= 0.3) best_low_cov_lift = std::max(best_low_cov_lift, pt.lift);
    }
    EXPECT_GT(best_low_cov_lift, 1.2) << "ad " << ad;
  }
  (void)pop;  // compared in the Figure 22/23 bench; here we only assert KE-z works
}

}  // namespace
}  // namespace timr::bt
