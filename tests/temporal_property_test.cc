// Property tests: the engine's output must match independent brute-force
// reference implementations of the temporal algebra across randomized inputs
// (parameterized sweeps over seed, cardinality, window size and key space).

#include <gtest/gtest.h>

#include <map>

#include "analysis/analyzer.h"
#include "common/rng.h"
#include "mr/cluster.h"
#include "property_plans.h"
#include "temporal/conformance.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/timr.h"

namespace timr::temporal {
namespace {

Schema KV() {
  return Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
}

std::vector<Event> RandomPoints(int n, int64_t horizon, int64_t keys,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    events.push_back(Event::Point(
        rng.UniformInt(0, horizon),
        {Value(rng.UniformInt(0, keys - 1)), Value(rng.UniformInt(0, 50))}));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.le < b.le; });
  return events;
}

// Brute-force reference for per-key windowed aggregates: enumerate every
// snapshot boundary and recompute the aggregate from scratch.
std::vector<Event> ReferenceGroupedAgg(const std::vector<Event>& points,
                                       Timestamp w, AggKind kind) {
  std::map<int64_t, std::vector<const Event*>> by_key;
  for (const Event& e : points) by_key[e.payload[0].AsInt64()].push_back(&e);
  std::vector<Event> out;
  for (auto& [key, events] : by_key) {
    std::set<Timestamp> boundaries;
    for (const Event* e : events) {
      boundaries.insert(e->le);
      boundaries.insert(e->le + w);
    }
    std::vector<Timestamp> b(boundaries.begin(), boundaries.end());
    for (size_t i = 0; i + 1 <= b.size(); ++i) {
      const Timestamp lo = b[i];
      const Timestamp hi = i + 1 < b.size() ? b[i + 1] : lo + 1;
      if (lo >= hi) continue;
      // Aggregate over events active at `lo` (constant until hi).
      int64_t count = 0;
      double sum = 0, mn = 1e300, mx = -1e300;
      for (const Event* e : events) {
        if (e->le <= lo && lo < e->le + w) {
          ++count;
          const double v = e->payload[1].AsNumeric();
          sum += v;
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      }
      if (count == 0) continue;
      Value result;
      switch (kind) {
        case AggKind::kCount: result = Value(count); break;
        case AggKind::kSum: result = Value(sum); break;
        case AggKind::kMin: result = Value(mn); break;
        case AggKind::kMax: result = Value(mx); break;
        case AggKind::kAvg: result = Value(sum / count); break;
      }
      out.push_back(Event(lo, hi, {Value(key), result}));
    }
  }
  return out;
}

// ---------- Parameterized aggregate sweep ----------

struct AggCase {
  uint64_t seed;
  int n;
  int64_t keys;
  Timestamp window;
  AggKind kind;
};

class GroupedAggProperty : public ::testing::TestWithParam<AggCase> {};

TEST_P(GroupedAggProperty, MatchesBruteForce) {
  const AggCase& c = GetParam();
  auto events = RandomPoints(c.n, /*horizon=*/400, c.keys, c.seed);

  AggregateSpec spec;
  spec.kind = c.kind;
  spec.value_column = "V";
  spec.output_name = "agg";
  Query q = Query::Input("S", KV()).GroupApply({"K"}, [&](Query g) {
    return g.Window(c.window).Aggregate(spec);
  });
  auto got = Executor::Execute(q.node(), {{"S", events}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  auto expected = ReferenceGroupedAgg(events, c.window, c.kind);
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed << " n=" << c.n << " w=" << c.window;
}

std::vector<AggCase> AggCases() {
  std::vector<AggCase> cases;
  uint64_t seed = 1;
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax, AggKind::kAvg}) {
    for (Timestamp w : {1, 3, 17, 100}) {
      for (int n : {1, 13, 120}) {
        cases.push_back({seed++, n, 4, w, kind});
      }
    }
  }
  // A few high-collision cases (many simultaneous timestamps).
  cases.push_back({97, 200, 2, 5, AggKind::kCount});
  cases.push_back({98, 200, 1, 50, AggKind::kMax});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupedAggProperty,
                         ::testing::ValuesIn(AggCases()));

// ---------- Parameterized join sweep ----------

struct JoinCase {
  uint64_t seed;
  int n;
  int64_t keys;
  Timestamp lw, rw;  // window applied to each side
};

class JoinProperty : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinProperty, MatchesBruteForce) {
  const JoinCase& c = GetParam();
  auto left = RandomPoints(c.n, 300, c.keys, c.seed);
  auto right = RandomPoints(c.n, 300, c.keys, c.seed + 1000);

  Query q = Query::TemporalJoin(Query::Input("L", KV()).Window(c.lw),
                                Query::Input("R", KV()).Window(c.rw), {"K"},
                                {"K"});
  auto got = Executor::Execute(q.node(), {{"L", left}, {"R", right}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Event> expected;
  for (const Event& l : left) {
    for (const Event& r : right) {
      if (l.payload[0] != r.payload[0]) continue;
      const Timestamp le = std::max(l.le, r.le);
      const Timestamp re = std::min(l.le + c.lw, r.le + c.rw);
      if (le >= re) continue;
      Row payload = l.payload;
      payload.insert(payload.end(), r.payload.begin(), r.payload.end());
      expected.push_back(Event(le, re, std::move(payload)));
    }
  }
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed;
}

std::vector<JoinCase> JoinCases() {
  std::vector<JoinCase> cases;
  uint64_t seed = 11;
  for (Timestamp lw : {2, 20}) {
    for (Timestamp rw : {2, 20, 150}) {
      for (int n : {5, 40, 90}) cases.push_back({seed++, n, 3, lw, rw});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinProperty, ::testing::ValuesIn(JoinCases()));

// ---------- Parameterized anti-semi-join sweep ----------

class AsjProperty : public ::testing::TestWithParam<JoinCase> {};

TEST_P(AsjProperty, MatchesBruteForce) {
  const JoinCase& c = GetParam();
  auto left = RandomPoints(c.n, 300, c.keys, c.seed);
  auto right = RandomPoints(c.n / 2 + 1, 300, c.keys, c.seed + 500);

  Query q = Query::AntiSemiJoin(Query::Input("L", KV()),
                                Query::Input("R", KV()).Window(c.rw), {"K"},
                                {"K"});
  auto got = Executor::Execute(q.node(), {{"L", left}, {"R", right}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Event> expected;
  for (const Event& l : left) {
    bool covered = false;
    for (const Event& r : right) {
      if (l.payload[0] == r.payload[0] && r.le <= l.le && l.le < r.le + c.rw) {
        covered = true;
        break;
      }
    }
    if (!covered) expected.push_back(l);
  }
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsjProperty, ::testing::ValuesIn(JoinCases()));

// ---------- TiMR equivalence sweep ----------

struct TimrCase {
  uint64_t seed;
  int machines;
  bool temporal_partitioning;
};

class TimrEquivalence : public ::testing::TestWithParam<TimrCase> {};

TEST_P(TimrEquivalence, DistributedMatchesSingleNode) {
  const TimrCase& c = GetParam();
  auto events = RandomPoints(800, 6 * kHour, 12, c.seed);

  Query plain = Query::Input("S", KV()).GroupApply({"K"}, [](Query g) {
    return g.Window(600).Count();
  });
  Query annotated =
      c.temporal_partitioning
          ? Query::Input("S", KV())
                .Exchange(PartitionSpec::ByTime(30 * kMinute, 600))
                .GroupApply({"K"},
                            [](Query g) { return g.Window(600).Count(); })
          : Query::Input("S", KV())
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .GroupApply({"K"},
                            [](Query g) { return g.Window(600).Count(); });

  auto single = Executor::Execute(plain.node(), {{"S", events}});
  ASSERT_TRUE(single.ok());
  mr::LocalCluster cluster(c.machines, 2);
  auto dist = framework::RunPlanOnEvents(&cluster, annotated.node(),
                                         {{"S", {KV(), events}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_TRUE(
      SameTemporalRelation(single.ValueOrDie(), dist.ValueOrDie().output))
      << "seed=" << c.seed << " machines=" << c.machines
      << " temporal=" << c.temporal_partitioning;
}

std::vector<TimrCase> TimrCases() {
  std::vector<TimrCase> cases;
  uint64_t seed = 21;
  for (int machines : {1, 3, 8, 32}) {
    for (bool temporal : {false, true}) cases.push_back({seed++, machines, temporal});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimrEquivalence,
                         ::testing::ValuesIn(TimrCases()));

// ---------- Batched execution equivalence sweep ----------
//
// The engine's contract: an EventBatch is exactly the per-item call sequence
// it expands to, and the driver's morsel size never changes output. These
// sweeps drive every operator family (a) strictly per event, (b) through
// RunBatch at several batch sizes, and (c) with randomized batch cut points
// that put CTI marks mid-batch, and require *bit-identical* output events and
// identical conformance verdicts — not just the same temporal relation.

struct DriveResult {
  std::vector<Event> output;
  std::vector<std::string> violations;
};

// The strict per-event reference driver (the engine's pre-batching loop):
// globally merge sources by LE, advance every source's CTI before each LE
// advance, push events one at a time.
DriveResult RunPerEvent(const PlanNodePtr& plan,
                        std::map<std::string, std::vector<Event>> inputs) {
  auto exec = Executor::Create(plan).ValueOrDie();
  struct Cursor {
    std::string name;
    std::vector<Event>* events;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [name, events] : inputs) {
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.le < b.le; });
    cursors.push_back(Cursor{name, &events, 0});
  }
  Timestamp last_cti = kMinTime;
  while (true) {
    int pick = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].events->size()) continue;
      const Timestamp le = (*cursors[i].events)[cursors[i].pos].le;
      if (pick == -1 || le < (*cursors[pick].events)[cursors[pick].pos].le) {
        pick = static_cast<int>(i);
      }
    }
    if (pick == -1) break;
    Cursor& c = cursors[pick];
    Event ev = std::move((*c.events)[c.pos++]);
    if (ev.le > last_cti) {
      last_cti = ev.le;
      exec->PushCtiAll(last_cti);
    }
    TIMR_CHECK_OK(exec->PushEvent(c.name, std::move(ev)));
  }
  exec->Finish();
  return {exec->TakeOutput(), exec->ConformanceViolations()};
}

// Batched driver with randomized morsel boundaries: same merge order, but
// events are packed into per-source EventBatches cut at random points (so CTI
// marks land mid-batch), delivered via PushBatch with a coarse catch-up CTI
// to the other sources at each flush — the same protocol as RunBatch.
DriveResult RunRandomBatches(const PlanNodePtr& plan,
                             std::map<std::string, std::vector<Event>> inputs,
                             uint64_t seed) {
  auto exec = Executor::Create(plan).ValueOrDie();
  Rng rng(seed);
  struct Cursor {
    std::string name;
    std::vector<Event>* events;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (auto& [name, events] : inputs) {
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.le < b.le; });
    cursors.push_back(Cursor{name, &events, 0});
  }
  Timestamp last_cti = kMinTime;
  EventBatch batch;
  std::string batch_src;
  auto flush = [&]() {
    if (batch_src.empty()) return;
    std::string src = batch_src;
    batch_src.clear();
    TIMR_CHECK_OK(exec->PushBatch(src, std::move(batch)));
    batch = EventBatch();
    for (const std::string& name : exec->input_names()) {
      if (name != src) TIMR_CHECK_OK(exec->PushCti(name, last_cti));
    }
  };
  while (true) {
    int pick = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].events->size()) continue;
      const Timestamp le = (*cursors[i].events)[cursors[i].pos].le;
      if (pick == -1 || le < (*cursors[pick].events)[cursors[pick].pos].le) {
        pick = static_cast<int>(i);
      }
    }
    if (pick == -1) break;
    Cursor& c = cursors[pick];
    const bool cut = rng.UniformInt(0, 4) == 0;  // random morsel boundary
    if (c.name != batch_src || cut) flush();
    batch_src = c.name;
    Event ev = std::move((*c.events)[c.pos++]);
    if (ev.le > last_cti) {
      last_cti = ev.le;
      batch.AddCti(last_cti);
    }
    batch.Add(std::move(ev));
  }
  flush();
  exec->Finish();
  return {exec->TakeOutput(), exec->ConformanceViolations()};
}

void ExpectBitIdentical(const std::vector<Event>& a,
                        const std::vector<Event>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].le, b[i].le) << what << " event " << i;
    ASSERT_EQ(a[i].re, b[i].re) << what << " event " << i;
    ASSERT_EQ(a[i].payload, b[i].payload) << what << " event " << i;
  }
}

struct BatchCase {
  const char* name;
  uint64_t seed;
};

class BatchEquivalence : public ::testing::TestWithParam<BatchCase> {
 protected:
  // Every operator family, including a fusable stateless chain (the shared
  // catalog of tests/property_plans.h). Plans are instrumented with
  // ConformanceCheck operators so the batched checker runs on every edge and
  // its verdicts can be compared against the per-event run.
  static Query MakePlan(const std::string& name) {
    return testutil::MakePropertyPlan(name);
  }

  static std::map<std::string, std::vector<Event>> MakeInputs(
      const std::string& name, uint64_t seed) {
    std::map<std::string, std::vector<Event>> inputs;
    if (name == "join" || name == "asj" || name == "union") {
      inputs["L"] = RandomPoints(120, 300, 3, seed);
      inputs["R"] = RandomPoints(90, 300, 3, seed + 1000);
    } else {
      inputs["S"] = RandomPoints(150, 400, 4, seed);
    }
    return inputs;
  }
};

TEST_P(BatchEquivalence, BatchedMatchesPerEventBitForBit) {
  const BatchCase& c = GetParam();
  PlanNodePtr plan =
      analysis::InstrumentFragmentPlan("batch_eq", MakePlan(c.name).node());
  auto inputs = MakeInputs(c.name, c.seed);

  DriveResult reference = RunPerEvent(plan, inputs);
  EXPECT_TRUE(reference.violations.empty());

  // Both execution modes (columnar morsels with vectorized kernels, and the
  // row path) at every batch size must reproduce the per-event run bit for
  // bit, including the conformance checkers' verdicts.
  for (bool columnar : {true, false}) {
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}, size_t{4096}}) {
      auto exec = Executor::Create(plan).ValueOrDie();
      exec->set_batch_size(batch_size);
      exec->set_columnar(columnar);
      auto got = exec->RunBatch(inputs);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(reference.output, got.ValueOrDie(),
                         std::string(c.name) + " batch_size=" +
                             std::to_string(batch_size) +
                             (columnar ? " columnar" : " row"));
      EXPECT_EQ(reference.violations, exec->ConformanceViolations());
    }
  }

  for (uint64_t cut_seed = 0; cut_seed < 3; ++cut_seed) {
    DriveResult random = RunRandomBatches(plan, inputs, c.seed * 31 + cut_seed);
    ExpectBitIdentical(reference.output, random.output,
                       std::string(c.name) + " random cuts seed=" +
                           std::to_string(cut_seed));
    EXPECT_EQ(reference.violations, random.violations);
  }
}

// Punctuation thinning (one driver CTI per N merged LE advances) must never
// change output: operators are CTI-granularity-invariant, so both the legacy
// constant (16) and the extremes (every event, whole-morsel) are equivalent.
TEST_P(BatchEquivalence, CtiThinningInvariance) {
  const BatchCase& c = GetParam();
  PlanNodePtr plan =
      analysis::InstrumentFragmentPlan("cti_thin", MakePlan(c.name).node());
  auto inputs = MakeInputs(c.name, c.seed);

  DriveResult reference = RunPerEvent(plan, inputs);
  for (size_t thinning : {size_t{1}, size_t{16}, size_t{4096}}) {
    auto exec = Executor::Create(plan).ValueOrDie();
    exec->set_cti_thinning(thinning);
    auto got = exec->RunBatch(inputs);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(reference.output, got.ValueOrDie(),
                       std::string(c.name) + " cti_thinning=" +
                           std::to_string(thinning));
    EXPECT_TRUE(exec->ConformanceViolations().empty());
  }
}

std::vector<BatchCase> BatchCases() {
  std::vector<BatchCase> cases;
  uint64_t seed = 41;
  for (const std::string& name : testutil::PropertyPlanNames()) {
    for (int rep = 0; rep < 2; ++rep) cases.push_back({name.c_str(), seed++});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivalence,
                         ::testing::ValuesIn(BatchCases()));

// ---------- ConformanceCheckOp: batched == per-event on violating input ----------

TEST(ConformanceBatch, BatchedVerdictsMatchPerEventOnBadStream) {
  // A stream with one of each violation class: inverted lifetime, event
  // preceding the delivered CTI (twice), and a regressed CTI.
  const std::vector<Event> events = {
      Event(5, 10, {Value(int64_t{1})}),  // good
      Event(7, 7, {Value(int64_t{2})}),   // inverted lifetime
      Event(6, 9, {Value(int64_t{3})}),   // precedes CTI 8
      Event(9, 12, {Value(int64_t{4})}),  // good
      Event(3, 20, {Value(int64_t{5})}),  // precedes CTI 8
  };

  ConformanceCheckOp per_event("edge");
  CollectorSink per_event_out;
  per_event.AddOutput(&per_event_out);
  per_event.OnEvent(events[0]);
  per_event.OnEvent(events[1]);
  per_event.OnCti(8);
  per_event.OnEvent(events[2]);
  per_event.OnEvent(events[3]);
  per_event.OnCti(4);  // regressed
  per_event.OnEvent(events[4]);
  per_event.OnCti(30);

  ConformanceCheckOp batched("edge");
  CollectorSink batched_out;
  batched.AddOutput(&batched_out);
  EventBatch batch;
  for (const Event& e : events) batch.Add(e);
  // Mark positions are appended directly (AddCti would coalesce the regressed
  // mark away); {pos, t}: CTI fires before the event at `pos`.
  batch.mutable_ctis().push_back({2, 8});
  batch.mutable_ctis().push_back({4, 4});
  batch.mutable_ctis().push_back({5, 30});
  batched.OnBatch(std::move(batch));

  EXPECT_EQ(per_event.violations(), batched.violations());
  EXPECT_EQ(per_event.violations().size(), 4u);
  ExpectBitIdentical(per_event_out.events(), batched_out.events(),
                     "conformance passthrough");
  EXPECT_EQ(per_event_out.last_cti(), batched_out.last_cti());
  EXPECT_EQ(per_event.events_consumed(), batched.events_consumed());
}

}  // namespace
}  // namespace timr::temporal
