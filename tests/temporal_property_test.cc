// Property tests: the engine's output must match independent brute-force
// reference implementations of the temporal algebra across randomized inputs
// (parameterized sweeps over seed, cardinality, window size and key space).

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/timr.h"

namespace timr::temporal {
namespace {

Schema KV() {
  return Schema::Of({{"K", ValueType::kInt64}, {"V", ValueType::kInt64}});
}

std::vector<Event> RandomPoints(int n, int64_t horizon, int64_t keys,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    events.push_back(Event::Point(
        rng.UniformInt(0, horizon),
        {Value(rng.UniformInt(0, keys - 1)), Value(rng.UniformInt(0, 50))}));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.le < b.le; });
  return events;
}

// Brute-force reference for per-key windowed aggregates: enumerate every
// snapshot boundary and recompute the aggregate from scratch.
std::vector<Event> ReferenceGroupedAgg(const std::vector<Event>& points,
                                       Timestamp w, AggKind kind) {
  std::map<int64_t, std::vector<const Event*>> by_key;
  for (const Event& e : points) by_key[e.payload[0].AsInt64()].push_back(&e);
  std::vector<Event> out;
  for (auto& [key, events] : by_key) {
    std::set<Timestamp> boundaries;
    for (const Event* e : events) {
      boundaries.insert(e->le);
      boundaries.insert(e->le + w);
    }
    std::vector<Timestamp> b(boundaries.begin(), boundaries.end());
    for (size_t i = 0; i + 1 <= b.size(); ++i) {
      const Timestamp lo = b[i];
      const Timestamp hi = i + 1 < b.size() ? b[i + 1] : lo + 1;
      if (lo >= hi) continue;
      // Aggregate over events active at `lo` (constant until hi).
      int64_t count = 0;
      double sum = 0, mn = 1e300, mx = -1e300;
      for (const Event* e : events) {
        if (e->le <= lo && lo < e->le + w) {
          ++count;
          const double v = e->payload[1].AsNumeric();
          sum += v;
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
      }
      if (count == 0) continue;
      Value result;
      switch (kind) {
        case AggKind::kCount: result = Value(count); break;
        case AggKind::kSum: result = Value(sum); break;
        case AggKind::kMin: result = Value(mn); break;
        case AggKind::kMax: result = Value(mx); break;
        case AggKind::kAvg: result = Value(sum / count); break;
      }
      out.push_back(Event(lo, hi, {Value(key), result}));
    }
  }
  return out;
}

// ---------- Parameterized aggregate sweep ----------

struct AggCase {
  uint64_t seed;
  int n;
  int64_t keys;
  Timestamp window;
  AggKind kind;
};

class GroupedAggProperty : public ::testing::TestWithParam<AggCase> {};

TEST_P(GroupedAggProperty, MatchesBruteForce) {
  const AggCase& c = GetParam();
  auto events = RandomPoints(c.n, /*horizon=*/400, c.keys, c.seed);

  AggregateSpec spec;
  spec.kind = c.kind;
  spec.value_column = "V";
  spec.output_name = "agg";
  Query q = Query::Input("S", KV()).GroupApply({"K"}, [&](Query g) {
    return g.Window(c.window).Aggregate(spec);
  });
  auto got = Executor::Execute(q.node(), {{"S", events}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  auto expected = ReferenceGroupedAgg(events, c.window, c.kind);
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed << " n=" << c.n << " w=" << c.window;
}

std::vector<AggCase> AggCases() {
  std::vector<AggCase> cases;
  uint64_t seed = 1;
  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax, AggKind::kAvg}) {
    for (Timestamp w : {1, 3, 17, 100}) {
      for (int n : {1, 13, 120}) {
        cases.push_back({seed++, n, 4, w, kind});
      }
    }
  }
  // A few high-collision cases (many simultaneous timestamps).
  cases.push_back({97, 200, 2, 5, AggKind::kCount});
  cases.push_back({98, 200, 1, 50, AggKind::kMax});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupedAggProperty,
                         ::testing::ValuesIn(AggCases()));

// ---------- Parameterized join sweep ----------

struct JoinCase {
  uint64_t seed;
  int n;
  int64_t keys;
  Timestamp lw, rw;  // window applied to each side
};

class JoinProperty : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinProperty, MatchesBruteForce) {
  const JoinCase& c = GetParam();
  auto left = RandomPoints(c.n, 300, c.keys, c.seed);
  auto right = RandomPoints(c.n, 300, c.keys, c.seed + 1000);

  Query q = Query::TemporalJoin(Query::Input("L", KV()).Window(c.lw),
                                Query::Input("R", KV()).Window(c.rw), {"K"},
                                {"K"});
  auto got = Executor::Execute(q.node(), {{"L", left}, {"R", right}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Event> expected;
  for (const Event& l : left) {
    for (const Event& r : right) {
      if (l.payload[0] != r.payload[0]) continue;
      const Timestamp le = std::max(l.le, r.le);
      const Timestamp re = std::min(l.le + c.lw, r.le + c.rw);
      if (le >= re) continue;
      Row payload = l.payload;
      payload.insert(payload.end(), r.payload.begin(), r.payload.end());
      expected.push_back(Event(le, re, std::move(payload)));
    }
  }
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed;
}

std::vector<JoinCase> JoinCases() {
  std::vector<JoinCase> cases;
  uint64_t seed = 11;
  for (Timestamp lw : {2, 20}) {
    for (Timestamp rw : {2, 20, 150}) {
      for (int n : {5, 40, 90}) cases.push_back({seed++, n, 3, lw, rw});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinProperty, ::testing::ValuesIn(JoinCases()));

// ---------- Parameterized anti-semi-join sweep ----------

class AsjProperty : public ::testing::TestWithParam<JoinCase> {};

TEST_P(AsjProperty, MatchesBruteForce) {
  const JoinCase& c = GetParam();
  auto left = RandomPoints(c.n, 300, c.keys, c.seed);
  auto right = RandomPoints(c.n / 2 + 1, 300, c.keys, c.seed + 500);

  Query q = Query::AntiSemiJoin(Query::Input("L", KV()),
                                Query::Input("R", KV()).Window(c.rw), {"K"},
                                {"K"});
  auto got = Executor::Execute(q.node(), {{"L", left}, {"R", right}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  std::vector<Event> expected;
  for (const Event& l : left) {
    bool covered = false;
    for (const Event& r : right) {
      if (l.payload[0] == r.payload[0] && r.le <= l.le && l.le < r.le + c.rw) {
        covered = true;
        break;
      }
    }
    if (!covered) expected.push_back(l);
  }
  EXPECT_TRUE(SameTemporalRelation(got.ValueOrDie(), expected))
      << "seed=" << c.seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsjProperty, ::testing::ValuesIn(JoinCases()));

// ---------- TiMR equivalence sweep ----------

struct TimrCase {
  uint64_t seed;
  int machines;
  bool temporal_partitioning;
};

class TimrEquivalence : public ::testing::TestWithParam<TimrCase> {};

TEST_P(TimrEquivalence, DistributedMatchesSingleNode) {
  const TimrCase& c = GetParam();
  auto events = RandomPoints(800, 6 * kHour, 12, c.seed);

  Query plain = Query::Input("S", KV()).GroupApply({"K"}, [](Query g) {
    return g.Window(600).Count();
  });
  Query annotated =
      c.temporal_partitioning
          ? Query::Input("S", KV())
                .Exchange(PartitionSpec::ByTime(30 * kMinute, 600))
                .GroupApply({"K"},
                            [](Query g) { return g.Window(600).Count(); })
          : Query::Input("S", KV())
                .Exchange(PartitionSpec::ByKeys({"K"}))
                .GroupApply({"K"},
                            [](Query g) { return g.Window(600).Count(); });

  auto single = Executor::Execute(plain.node(), {{"S", events}});
  ASSERT_TRUE(single.ok());
  mr::LocalCluster cluster(c.machines, 2);
  auto dist = framework::RunPlanOnEvents(&cluster, annotated.node(),
                                         {{"S", {KV(), events}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_TRUE(
      SameTemporalRelation(single.ValueOrDie(), dist.ValueOrDie().output))
      << "seed=" << c.seed << " machines=" << c.machines
      << " temporal=" << c.temporal_partitioning;
}

std::vector<TimrCase> TimrCases() {
  std::vector<TimrCase> cases;
  uint64_t seed = 21;
  for (int machines : {1, 3, 8, 32}) {
    for (bool temporal : {false, true}) cases.push_back({seed++, machines, temporal});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimrEquivalence,
                         ::testing::ValuesIn(TimrCases()));

}  // namespace
}  // namespace timr::temporal
