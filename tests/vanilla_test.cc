// Tests for the §III-C.4 vanilla map-reduce transformation: a multi-input
// fragment executed through the unified single-input rewrite must produce the
// same temporal relation as the native multi-input stage.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/timr.h"
#include "timr/vanilla.h"

namespace timr::framework {
namespace {

using temporal::Event;
using temporal::PartitionSpec;
using temporal::Query;
using temporal::SameTemporalRelation;

Schema LeftSchema() {
  return Schema::Of({{"K", ValueType::kInt64}, {"A", ValueType::kInt64}});
}
Schema RightSchema() {
  return Schema::Of({{"B", ValueType::kInt64},
                     {"K", ValueType::kInt64},
                     {"C", ValueType::kInt64}});
}

std::vector<Event> RandomPoints(int n, int width, uint64_t seed, int key_col) {
  Rng rng(seed);
  std::vector<Event> events;
  for (int i = 0; i < n; ++i) {
    Row r;
    for (int c = 0; c < width; ++c) r.push_back(Value(rng.UniformInt(0, 30)));
    r[key_col] = Value(rng.UniformInt(0, 5));
    events.push_back(Event::Point(rng.UniformInt(0, 500), std::move(r)));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.le < b.le; });
  return events;
}

// A keyed two-input fragment: join of two sources on K.
Fragment TwoInputFragment() {
  Query join = Query::TemporalJoin(Query::Input("L", LeftSchema()).Window(40),
                                   Query::Input("R", RightSchema()).Window(25),
                                   {"K"}, {"K"});
  Fragment frag;
  frag.name = "join_frag";
  frag.root = join.node();
  frag.key = PartitionSpec::ByKeys({"K"});
  frag.inputs = {"L", "R"};
  frag.input_is_external = {true, true};
  return frag;
}

TEST(Vanilla, RewriteProducesSingleInputFragment) {
  auto vanilla = ToVanillaFragment(TwoInputFragment(),
                                   {LeftSchema(), RightSchema()});
  ASSERT_TRUE(vanilla.ok()) << vanilla.status().ToString();
  EXPECT_EQ(vanilla.ValueOrDie().fragment.inputs,
            std::vector<std::string>{kUnifiedInput});
  // Key column K must exist by name in the unified row schema.
  EXPECT_TRUE(vanilla.ValueOrDie().unified_row_schema.HasField("K"));
  EXPECT_TRUE(vanilla.ValueOrDie().unified_row_schema.HasField(kSrcColumn));
}

TEST(Vanilla, MatchesNativeMultiInputExecution) {
  auto left = RandomPoints(300, 2, 1, 0);
  auto right = RandomPoints(250, 3, 2, 1);

  Fragment frag = TwoInputFragment();
  mr::LocalCluster cluster(4, 2);
  TimrOptions options;

  // --- Native multi-input path. ---
  std::map<std::string, mr::Dataset> store;
  store["L"] = mr::Dataset::FromRows(
      temporal::PointRowSchema(LeftSchema()),
      temporal::RowsFromEvents(left, false).ValueOrDie());
  store["R"] = mr::Dataset::FromRows(
      temporal::PointRowSchema(RightSchema()),
      temporal::RowsFromEvents(right, false).ValueOrDie());
  FragmentStats stats;
  auto native_stage = CompileFragment(
      frag, {store.at("L").schema(), store.at("R").schema()}, 4, options,
      {0, 0}, &stats);
  ASSERT_TRUE(native_stage.ok()) << native_stage.status().ToString();
  mr::StageStats sstats;
  ASSERT_TRUE(cluster.RunStage(native_stage.ValueOrDie(), &store, &sstats).ok());
  auto native_out = temporal::EventsFromRows(store.at("join_frag").schema(),
                                             store.at("join_frag").Gather());
  ASSERT_TRUE(native_out.ok());

  // --- Vanilla single-input path. ---
  auto vanilla = ToVanillaFragment(frag, {LeftSchema(), RightSchema()});
  ASSERT_TRUE(vanilla.ok()) << vanilla.status().ToString();
  auto unified = UnifyDatasets(
      vanilla.ValueOrDie(), {&store.at("L"), &store.at("R")},
      {store.at("L").schema(), store.at("R").schema()});
  ASSERT_TRUE(unified.ok()) << unified.status().ToString();

  std::map<std::string, mr::Dataset> vstore;
  vstore[kUnifiedInput] = unified.ValueOrDie();
  FragmentStats vstats;
  Fragment vfrag = vanilla.ValueOrDie().fragment;
  vfrag.name = "vanilla_frag";
  auto vanilla_stage =
      CompileFragment(vfrag, {vanilla.ValueOrDie().unified_row_schema}, 4,
                      options, {0, 0}, &vstats);
  ASSERT_TRUE(vanilla_stage.ok()) << vanilla_stage.status().ToString();
  mr::StageStats vsstats;
  ASSERT_TRUE(
      cluster.RunStage(vanilla_stage.ValueOrDie(), &vstore, &vsstats).ok());
  auto vanilla_out =
      temporal::EventsFromRows(vstore.at("vanilla_frag").schema(),
                               vstore.at("vanilla_frag").Gather());
  ASSERT_TRUE(vanilla_out.ok());

  EXPECT_GT(native_out.ValueOrDie().size(), 0u);
  EXPECT_TRUE(SameTemporalRelation(native_out.ValueOrDie(),
                                   vanilla_out.ValueOrDie()));
}

TEST(Vanilla, SingleNodeSemanticsPreserved) {
  // The rewritten plan run on the unified *events* equals the original plan
  // run on the separate sources (engine-level check, no cluster).
  auto left = RandomPoints(120, 2, 7, 0);
  auto right = RandomPoints(100, 3, 8, 1);
  Fragment frag = TwoInputFragment();
  auto vanilla = ToVanillaFragment(frag, {LeftSchema(), RightSchema()});
  ASSERT_TRUE(vanilla.ok());

  auto original = temporal::Executor::Execute(frag.root,
                                              {{"L", left}, {"R", right}});
  ASSERT_TRUE(original.ok());

  // Build unified events directly: [__Src, K, rest...].
  std::vector<Event> unified;
  for (const Event& e : left) {
    unified.push_back(Event::Point(
        e.le, {Value(int64_t{0}), e.payload[0], e.payload[1]}));
  }
  for (const Event& e : right) {
    unified.push_back(Event::Point(
        e.le,
        {Value(int64_t{1}), e.payload[1], e.payload[0], e.payload[2]}));
  }
  auto rewritten = temporal::Executor::Execute(
      vanilla.ValueOrDie().fragment.root, {{kUnifiedInput, unified}});
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();
  EXPECT_TRUE(SameTemporalRelation(original.ValueOrDie(),
                                   rewritten.ValueOrDie()));
}

TEST(Vanilla, MissingKeyColumnRejected) {
  Fragment frag = TwoInputFragment();
  frag.key = PartitionSpec::ByKeys({"NotThere"});
  auto vanilla = ToVanillaFragment(frag, {LeftSchema(), RightSchema()});
  EXPECT_FALSE(vanilla.ok());
}

}  // namespace
}  // namespace timr::framework
