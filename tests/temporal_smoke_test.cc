// Early smoke tests for the temporal engine core; the full suites live in
// temporal_operator_test.cc / temporal_property_test.cc.

#include <gtest/gtest.h>

#include "temporal/executor.h"
#include "temporal/query.h"

namespace timr::temporal {
namespace {

Schema MeterSchema() {
  return Schema::Of({{"Id", ValueType::kInt64}, {"Power", ValueType::kInt64}});
}

std::vector<Event> Points(std::vector<std::pair<Timestamp, Row>> data) {
  std::vector<Event> out;
  for (auto& [t, row] : data) out.push_back(Event::Point(t, std::move(row)));
  return out;
}

TEST(TemporalSmoke, SelectFiltersEvents) {
  Query q = Query::Input("S", MeterSchema()).Where([](const Row& r) {
    return r[1].AsInt64() > 0;
  });
  auto out = Executor::Execute(
      q.node(), {{"S", Points({{1, {int64_t{1}, int64_t{0}}},
                               {2, {int64_t{1}, int64_t{5}}},
                               {3, {int64_t{1}, int64_t{0}}},
                               {4, {int64_t{1}, int64_t{7}}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const auto& events = out.ValueOrDie();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].le, 2);
  EXPECT_EQ(events[1].le, 4);
}

// The paper's Figure 3: window w=3 then Count, over readings at t=1,2,3,5.
TEST(TemporalSmoke, WindowedCountMatchesFigure3Shape) {
  Query q = Query::Input("S", MeterSchema()).Window(3).Count();
  auto out = Executor::Execute(
      q.node(), {{"S", Points({{1, {int64_t{1}, int64_t{10}}},
                               {2, {int64_t{1}, int64_t{20}}},
                               {3, {int64_t{1}, int64_t{30}}},
                               {5, {int64_t{1}, int64_t{40}}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Lifetimes: 1->[1,4), 2->[2,5), 3->[3,6), 5->[5,8). Active-count step
  // function: [1,2)=1 [2,3)=2 [3,4)=3 [4,5)=2 [5,6)=2 [6,8)=1.
  std::vector<Event> expected = {
      Event(1, 2, {Value(int64_t{1})}), Event(2, 3, {Value(int64_t{2})}),
      Event(3, 4, {Value(int64_t{3})}), Event(4, 5, {Value(int64_t{2})}),
      Event(5, 6, {Value(int64_t{2})}), Event(6, 8, {Value(int64_t{1})})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected))
      << "got:";
}

TEST(TemporalSmoke, GroupApplyCountsPerKey) {
  Query q = Query::Input("S", MeterSchema()).GroupApply({"Id"}, [](Query g) {
    return g.Window(10).Count();
  });
  auto out = Executor::Execute(
      q.node(), {{"S", Points({{1, {int64_t{1}, int64_t{0}}},
                               {2, {int64_t{2}, int64_t{0}}},
                               {3, {int64_t{1}, int64_t{0}}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Per key 1: count 1 on [1,3), 2 on [3,11), 1 on [11,13).
  // Per key 2: count 1 on [2,12).
  std::vector<Event> expected = {
      Event(1, 3, {Value(int64_t{1}), Value(int64_t{1})}),
      Event(3, 11, {Value(int64_t{1}), Value(int64_t{2})}),
      Event(11, 13, {Value(int64_t{1}), Value(int64_t{1})}),
      Event(2, 12, {Value(int64_t{2}), Value(int64_t{1})})};
  EXPECT_TRUE(SameTemporalRelation(out.ValueOrDie(), expected));
}

TEST(TemporalSmoke, TemporalJoinIntersectsLifetimes) {
  Schema s = MeterSchema();
  Query left = Query::Input("L", s).Window(5);
  Query right = Query::Input("R", s).Window(5);
  Query j = Query::TemporalJoin(left, right, {"Id"}, {"Id"});
  auto out = Executor::Execute(
      j.node(), {{"L", Points({{1, {int64_t{7}, int64_t{100}}}})},
                 {"R", Points({{3, {int64_t{7}, int64_t{200}}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  const Event& e = out.ValueOrDie()[0];
  EXPECT_EQ(e.le, 3);
  EXPECT_EQ(e.re, 6);
  ASSERT_EQ(e.payload.size(), 4u);
  EXPECT_EQ(e.payload[1].AsInt64(), 100);
  EXPECT_EQ(e.payload[3].AsInt64(), 200);
}

TEST(TemporalSmoke, AntiSemiJoinSuppressesCoveredPoints) {
  Schema s = MeterSchema();
  Query left = Query::Input("L", s);
  Query right = Query::Input("R", s).Window(4);
  Query a = Query::AntiSemiJoin(left, right, {"Id"}, {"Id"});
  // Right event at t=2 (key 7) covers [2,6). Left points: t=3 key 7 (dropped),
  // t=3 key 8 (kept), t=7 key 7 (kept: outside lifetime).
  auto out = Executor::Execute(
      a.node(), {{"L", Points({{3, {int64_t{7}, int64_t{1}}},
                               {3, {int64_t{8}, int64_t{2}}},
                               {7, {int64_t{7}, int64_t{3}}}})},
                 {"R", Points({{2, {int64_t{7}, int64_t{0}}}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.ValueOrDie().size(), 2u);
  EXPECT_EQ(out.ValueOrDie()[0].payload[0].AsInt64(), 8);
  EXPECT_EQ(out.ValueOrDie()[1].payload[1].AsInt64(), 3);
}

}  // namespace
}  // namespace timr::temporal
