// TiMR framework tests: fragment extraction, M-R execution equivalence with
// single-node execution, temporal partitioning, failure-restart repeatability.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/rng.h"
#include "mr/cluster.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/timr.h"

namespace timr::framework {
namespace {

using temporal::Event;
using temporal::Executor;
using temporal::kHour;
using temporal::PartitionSpec;
using temporal::Query;
using temporal::SameTemporalRelation;
using temporal::Timestamp;

Schema ClickSchema() {
  return Schema::Of({{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});
}

// Synthetic click log: `n` events over `horizon` seconds, `ads` ad ids.
std::vector<Event> MakeClicks(int n, Timestamp horizon, int ads, uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    events.push_back(Event::Point(
        rng.UniformInt(0, horizon),
        {Value(rng.UniformInt(1, 1000)), Value(rng.UniformInt(1, ads))}));
  }
  return events;
}

// The paper's RunningClickCount (Example 1): per-ad click count over a
// 6-hour window, here annotated with an exchange on AdId (Figure 7).
Query RunningClickCount(bool annotated) {
  Query input = Query::Input("ClickLog", ClickSchema());
  if (annotated) input = input.Exchange(PartitionSpec::ByKeys({"AdId"}));
  return input.GroupApply(
      {"AdId"}, [](Query g) { return g.Window(6 * kHour).Count("ClickCount"); });
}

TEST(TimrFragments, SingleFragmentForRunningClickCount) {
  auto frags = MakeFragments(RunningClickCount(true).node());
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  ASSERT_EQ(frags.ValueOrDie().fragments.size(), 1u);
  const Fragment& f = frags.ValueOrDie().fragments[0];
  EXPECT_EQ(f.key.keys, std::vector<std::string>{"AdId"});
  ASSERT_EQ(f.inputs.size(), 1u);
  EXPECT_EQ(f.inputs[0], "ClickLog");
  EXPECT_TRUE(f.input_is_external[0]);
}

TEST(TimrFragments, ConflictingKeysRejected) {
  Query input = Query::Input("S", ClickSchema());
  Query a = input.Exchange(PartitionSpec::ByKeys({"AdId"}));
  Query b = input.Exchange(PartitionSpec::ByKeys({"UserId"}));
  Query u = Query::Union(a, b);
  auto frags = MakeFragments(u.node());
  EXPECT_FALSE(frags.ok());
}

TEST(TimrExec, MatchesSingleNodeExecution) {
  auto clicks = MakeClicks(2000, 2 * 24 * kHour, 20, /*seed=*/42);

  auto single = Executor::Execute(RunningClickCount(false).node(),
                                  {{"ClickLog", clicks}});
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  mr::LocalCluster cluster(/*num_machines=*/8, /*num_threads=*/2);
  auto dist = RunPlanOnEvents(&cluster, RunningClickCount(true).node(),
                              {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();

  EXPECT_GT(dist.ValueOrDie().output.size(), 0u);
  EXPECT_TRUE(
      SameTemporalRelation(single.ValueOrDie(), dist.ValueOrDie().output));
}

// A query with no payload partitioning key: global sliding-window count,
// scaled out by time spans (paper §III-B).
TEST(TimrExec, TemporalPartitioningMatchesSingleNode) {
  auto clicks = MakeClicks(3000, 24 * kHour, 5, /*seed=*/7);
  const Timestamp w = 30 * 60;  // 30-minute window, as in Figure 16

  Query plain = Query::Input("ClickLog", ClickSchema()).Window(w).Count();
  Query annotated =
      Query::Input("ClickLog", ClickSchema())
          .Exchange(PartitionSpec::ByTime(/*span_width=*/2 * kHour, w))
          .Window(w)
          .Count();

  auto single = Executor::Execute(plain.node(), {{"ClickLog", clicks}});
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  mr::LocalCluster cluster(8, 2);
  auto dist = RunPlanOnEvents(&cluster, annotated.node(),
                              {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_GT(dist.ValueOrDie().job_stats.stages[0].partitions, 1);
  EXPECT_TRUE(
      SameTemporalRelation(single.ValueOrDie(), dist.ValueOrDie().output));
}

// Restarting a reducer must reproduce identical output (paper §III-C.1):
// the temporal algebra plus canonical shuffle order make tasks deterministic.
TEST(TimrExec, ReducerRestartIsRepeatable) {
  auto clicks = MakeClicks(1000, 24 * kHour, 10, /*seed=*/3);

  mr::LocalCluster cluster(4, 2);
  auto baseline = RunPlanOnEvents(&cluster, RunningClickCount(true).node(),
                                  {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  mr::FailureInjector injector;
  injector.FailOnce("frag_0", 0);
  injector.FailOnce("frag_0", 2);
  cluster.set_failure_injector(&injector);
  auto retried = RunPlanOnEvents(&cluster, RunningClickCount(true).node(),
                                 {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(injector.empty()) << "injected failures did not fire";
  EXPECT_GT(retried.ValueOrDie().job_stats.stages[0].retried_tasks, 0);

  // Identical, not merely equivalent: compare canonically sorted events.
  auto a = baseline.ValueOrDie().output;
  auto b = retried.ValueOrDie().output;
  temporal::SortEventsCanonical(&a);
  temporal::SortEventsCanonical(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].le, b[i].le);
    EXPECT_EQ(a[i].re, b[i].re);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

// A UDO that throws must surface as a structured Status at the task boundary
// — never a process abort. Each attempt's exception becomes kExecutionError;
// exhausting the retry budget yields kTaskFailed naming stage, partition, and
// attempt count with the underlying exception preserved in the message.
TEST(TimrExec, ThrowingUdoBecomesStatusNotAbort) {
  auto clicks = MakeClicks(500, 24 * kHour, 5, /*seed=*/13);

  Query q = Query::Input("ClickLog", ClickSchema())
                .Exchange(PartitionSpec::ByTime(/*span_width=*/12 * kHour,
                                                /*overlap=*/7 * kHour))
                .Udo(
                    6 * kHour, kHour,
                    [](Timestamp, Timestamp,
                       const std::vector<Event>&) -> std::vector<Row> {
                      throw std::runtime_error("udo boom");
                    },
                    Schema::Of({{"X", ValueType::kInt64}}));

  mr::LocalCluster cluster(4, 2);
  auto run = RunPlanOnEvents(&cluster, q.node(),
                             {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kTaskFailed)
      << run.status().ToString();
  const std::string& msg = run.status().message();
  EXPECT_NE(msg.find("frag_0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("after 3 attempts"), std::string::npos) << msg;
  EXPECT_NE(msg.find("reducer threw: udo boom"), std::string::npos) << msg;
}

// Multi-stage plan: per-(user,ad) counts, then a per-ad aggregate over those —
// requires a repartition between fragments.
TEST(TimrExec, TwoFragmentPipeline) {
  auto clicks = MakeClicks(1500, 24 * kHour, 8, /*seed=*/11);

  auto build = [](bool annotated) {
    Query input = Query::Input("ClickLog", ClickSchema());
    if (annotated) {
      input = input.Exchange(PartitionSpec::ByKeys({"UserId", "AdId"}));
    }
    Query per_user_ad = input.GroupApply({"UserId", "AdId"}, [](Query g) {
      return g.Window(6 * kHour).Count("c");
    });
    if (annotated) {
      per_user_ad = per_user_ad.Exchange(PartitionSpec::ByKeys({"AdId"}));
    }
    return per_user_ad.GroupApply(
        {"AdId"}, [](Query g) { return g.Aggregate(
            temporal::AggregateSpec::Max("c", "max_user_clicks")); });
  };

  auto single =
      Executor::Execute(build(false).node(), {{"ClickLog", clicks}});
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  mr::LocalCluster cluster(8, 2);
  auto dist = RunPlanOnEvents(&cluster, build(true).node(),
                              {{"ClickLog", {ClickSchema(), clicks}}});
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  ASSERT_EQ(dist.ValueOrDie().fragments.fragments.size(), 2u);
  EXPECT_TRUE(
      SameTemporalRelation(single.ValueOrDie(), dist.ValueOrDie().output));
}

}  // namespace
}  // namespace timr::framework
