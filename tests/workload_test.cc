// Workload generator tests: determinism, structural properties the
// experiments rely on, and the planted ground truth.

#include <gtest/gtest.h>

#include "bt/schema.h"
#include "workload/generator.h"

namespace timr::workload {
namespace {

GeneratorConfig TinyConfig() {
  GeneratorConfig cfg;
  cfg.num_users = 200;
  cfg.vocab_size = 2000;
  cfg.duration = 2 * temporal::kDay;
  cfg.num_ad_classes = 3;
  return cfg;
}

TEST(Generator, DeterministicInSeed) {
  auto a = GenerateBtLog(TinyConfig());
  auto b = GenerateBtLog(TinyConfig());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].le, b.events[i].le);
    EXPECT_EQ(a.events[i].payload, b.events[i].payload);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  auto a = GenerateBtLog(TinyConfig());
  GeneratorConfig cfg = TinyConfig();
  cfg.seed = 999;
  auto b = GenerateBtLog(cfg);
  EXPECT_NE(a.events.size(), b.events.size());
}

TEST(Generator, EventsSortedAndWellFormed) {
  auto log = GenerateBtLog(TinyConfig());
  ASSERT_GT(log.events.size(), 1000u);
  temporal::Timestamp last = temporal::kMinTime;
  for (const auto& e : log.events) {
    EXPECT_TRUE(e.IsPoint());
    EXPECT_GE(e.le, last);
    EXPECT_GE(e.le, 1);  // t=0 would straddle the hopping-grid origin
    last = e.le;
    ASSERT_EQ(e.payload.size(), 3u);
    const int64_t stream = e.payload[0].AsInt64();
    EXPECT_TRUE(stream == bt::kStreamImpression || stream == bt::kStreamClick ||
                stream == bt::kStreamKeyword);
  }
}

TEST(Generator, ClicksFollowImpressionsWithinHorizon) {
  auto log = GenerateBtLog(TinyConfig());
  // Every (user, ad) click must have an impression within the preceding
  // 4 minutes (the generator's max_click_delay), so the pipeline's 5-minute
  // non-click detector can pair them.
  std::map<std::pair<int64_t, int64_t>, std::vector<temporal::Timestamp>> imps;
  for (const auto& e : log.events) {
    if (e.payload[0].AsInt64() == bt::kStreamImpression) {
      imps[{e.payload[1].AsInt64(), e.payload[2].AsInt64()}].push_back(e.le);
    }
  }
  int checked = 0;
  for (const auto& e : log.events) {
    if (e.payload[0].AsInt64() != bt::kStreamClick) continue;
    auto it = imps.find({e.payload[1].AsInt64(), e.payload[2].AsInt64()});
    ASSERT_NE(it, imps.end());
    bool found = false;
    for (temporal::Timestamp t : it->second) {
      if (t < e.le && e.le - t <= 4 * temporal::kMinute) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "orphan click at " << e.le;
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST(Generator, GroundTruthIsConsistent) {
  auto log = GenerateBtLog(TinyConfig());
  ASSERT_EQ(log.truth.ad_classes.size(), 3u);
  for (const auto& cls : log.truth.ad_classes) {
    EXPECT_FALSE(cls.name.empty());
    for (const auto& [kw, lift] : cls.pos_keywords) EXPECT_GT(lift, 1.0);
    for (const auto& [kw, lift] : cls.neg_keywords) EXPECT_LT(lift, 1.0);
  }
  // Planted keywords have names; background keywords render as kw<i>.
  const auto& any_pos = *log.truth.ad_classes[0].pos_keywords.begin();
  EXPECT_NE(log.truth.KeywordName(any_pos.first).substr(0, 2), "kw");
  EXPECT_EQ(log.truth.KeywordName(1999999), "kw1999999");
  // The Example 2 trend keyword exists and is a deodorant positive.
  ASSERT_GE(log.truth.spike_keyword, 0);
  EXPECT_TRUE(
      log.truth.ad_classes[0].pos_keywords.count(log.truth.spike_keyword));
}

TEST(Generator, TrendSpikeRaisesKeywordVolume) {
  GeneratorConfig cfg = TinyConfig();
  cfg.duration = 5 * temporal::kDay;
  cfg.spike_start = 3 * temporal::kDay;
  cfg.spike_end = 4 * temporal::kDay;
  auto log = GenerateBtLog(cfg);
  size_t in_spike = 0, outside = 0;
  for (const auto& e : log.events) {
    if (e.payload[0].AsInt64() != bt::kStreamKeyword) continue;
    if (e.payload[2].AsInt64() != log.truth.spike_keyword) continue;
    if (e.le >= cfg.spike_start && e.le < cfg.spike_end) {
      ++in_spike;
    } else {
      ++outside;
    }
  }
  // One day of spike vs four normal days: the spike day alone must beat the
  // rest combined (paper Example 2's "icarly" surge).
  EXPECT_GT(in_spike, outside);
}

TEST(SplitByTime, HalvesAtMidpoint) {
  auto log = GenerateBtLog(TinyConfig());
  auto [train, test] = SplitByTime(log.events);
  EXPECT_GT(train.size(), log.events.size() / 4);
  EXPECT_GT(test.size(), log.events.size() / 4);
  EXPECT_EQ(train.size() + test.size(), log.events.size());
  EXPECT_LT(train.back().le, test.front().le + 1);
}

}  // namespace
}  // namespace timr::workload
