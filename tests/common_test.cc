// Unit tests for the common substrate: Status/Result, rows and schemas,
// hashing, RNG, and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "common/row.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace timr {
namespace {

// ---------- Status / Result ----------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::Invalid("bad news");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalid);
  EXPECT_EQ(st.message(), "bad news");
  EXPECT_EQ(st.ToString(), "Invalid: bad news");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TIMR_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(Result, MoveValueWorks) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(std::move(r).MoveValue(), "hello");
}

// ---------- Value / Row ----------

TEST(Value, TypesAndEquality) {
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));  // different types differ
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsNumeric(), 4.0);
}

TEST(Value, HashIsStableAndDiscriminates) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_NE(Value(int64_t{42}).Hash(), Value(int64_t{43}).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
}

TEST(Value, InternedIsStringByContent) {
  Value interned = Value::Interned("keyword");
  EXPECT_TRUE(interned.is_string());
  EXPECT_TRUE(interned.is_interned());
  EXPECT_EQ(interned.AsString(), "keyword");
  // Content equality across representations, both directions.
  EXPECT_EQ(interned, Value("keyword"));
  EXPECT_EQ(Value("keyword"), interned);
  EXPECT_NE(interned, Value("other"));
  // Two interns of the same content share one allocation.
  Value again = Value::Interned("keyword");
  EXPECT_EQ(&interned.AsString(), &again.AsString());
  EXPECT_EQ(interned, again);
  // Hash and ordering agree with the plain-string representation.
  EXPECT_EQ(interned.Hash(), Value("keyword").Hash());
  EXPECT_FALSE(interned < Value("keyword"));
  EXPECT_FALSE(Value("keyword") < interned);
  EXPECT_TRUE(Value("a") < interned);
}

TEST(Row, ExtractKeySelectsColumns) {
  Row r = {Value(1), Value(2), Value(3)};
  EXPECT_EQ(ExtractKey(r, {2, 0}), (Row{Value(3), Value(1)}));
}

TEST(Row, HashKeyOfMatchesHashOfExtractedKey) {
  Row r = {Value(7), Value("k"), Value(3.5)};
  EXPECT_EQ(HashKeyOf(r, {1, 0}), HashRow(ExtractKey(r, {1, 0})));
  EXPECT_EQ(HashKeyOf(r, {}), HashRow(Row{}));
}

// ---------- Schema ----------

TEST(Schema, IndexOfFindsAndFails) {
  Schema s = Schema::Of({{"A", ValueType::kInt64}, {"B", ValueType::kString}});
  EXPECT_EQ(s.IndexOf("B").ValueOrDie(), 1);
  EXPECT_FALSE(s.IndexOf("C").ok());
  EXPECT_TRUE(s.HasField("A"));
  EXPECT_FALSE(s.HasField("Z"));
}

TEST(Schema, ConcatRenamesCollisions) {
  Schema a = Schema::Of({{"X", ValueType::kInt64}});
  Schema b = Schema::Of({{"X", ValueType::kInt64}, {"Y", ValueType::kInt64}});
  Schema c = a.Concat(b);
  ASSERT_EQ(c.num_fields(), 3u);
  EXPECT_EQ(c.field(0).name, "X");
  EXPECT_EQ(c.field(1).name, "X_2");
  EXPECT_EQ(c.field(2).name, "Y");
}

TEST(Schema, SelectPreservesOrder) {
  Schema s = Schema::Of({{"A", ValueType::kInt64},
                         {"B", ValueType::kInt64},
                         {"C", ValueType::kInt64}});
  Schema sel = s.Select({2, 0});
  ASSERT_EQ(sel.num_fields(), 2u);
  EXPECT_EQ(sel.field(0).name, "C");
  EXPECT_EQ(sel.field(1).name, "A");
}

TEST(Schema, EqualityComparesNamesAndTypes) {
  Schema a = Schema::Of({{"A", ValueType::kInt64}});
  Schema b = Schema::Of({{"A", ValueType::kDouble}});
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Schema::Of({{"A", ValueType::kInt64}}));
}

// ---------- Hash ----------

TEST(Hash, MixAvalanchesLowBits) {
  std::set<uint64_t> buckets;
  for (uint64_t i = 0; i < 64; ++i) buckets.insert(HashMix(i) % 16);
  EXPECT_GT(buckets.size(), 8u);  // consecutive keys spread across buckets
}

TEST(Hash, RowHashMatchesEqualRows) {
  Row a = {Value(int64_t{1}), Value("k")};
  Row b = {Value(int64_t{1}), Value("k")};
  EXPECT_EQ(HashRow(a), HashRow(b));
}

// ---------- Rng / Zipf ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(7).Next(), c.Next());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(2);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Zipf, HeadIsMorePopularThanTail) {
  ZipfSampler zipf(1000, 1.1);
  Rng rng(3);
  int head = 0, tail = 0;
  for (int i = 0; i < 20000; ++i) {
    size_t k = zipf.Sample(&rng);
    ASSERT_LT(k, 1000u);
    if (k < 10) ++head;
    if (k >= 990) ++tail;
  }
  EXPECT_GT(head, 20 * std::max(tail, 1));
}

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesEdgeSizes) {
  ThreadPool pool(3);
  int ran = 0;
  pool.ParallelFor(0, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  pool.ParallelFor(1, [&](size_t) { ++ran; });  // inline path
  EXPECT_EQ(ran, 1);
  std::atomic<int> wide{0};
  pool.ParallelFor(2, [&](size_t) { wide.fetch_add(1); });
  EXPECT_EQ(wide.load(), 2);
}

TEST(ThreadPool, ParallelForSingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(64, [&](size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(500,
                                [&](size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 137) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> again{0};
  pool.ParallelFor(100, [&](size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 100);
  EXPECT_LE(ran.load(), 500);
}

TEST(ThreadPool, ParallelForBatchesInterleaveWithSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> submitted{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&] { submitted.fetch_add(1); });
  std::atomic<int> looped{0};
  pool.ParallelFor(200, [&](size_t) { looped.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(submitted.load(), 50);
  EXPECT_EQ(looped.load(), 200);
}

}  // namespace
}  // namespace timr
