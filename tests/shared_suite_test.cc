// Shared-fragment suite execution (timr/suite.h, ROADMAP 5a): the merged
// 20-CQ BT job must produce byte-identical per-query output to independent
// RunPlan runs — with sharing on or off, under exchange elision, under
// randomized fault injection, and across a kill/resume — while actually
// executing the repeated bot-elimination / UBP prefixes once.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bt_test_util.h"
#include "bt/queries.h"
#include "bt/schema.h"
#include "bt/suite_runner.h"
#include "mr/checkpoint.h"
#include "mr/cluster.h"
#include "mr/fault.h"
#include "temporal/event.h"
#include "temporal/query.h"
#include "timr/suite.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr {
namespace {

using temporal::Event;
using temporal::PartitionSpec;
using temporal::Query;
using framework::RunPlanSuite;
using framework::SuiteOptions;
using framework::SuiteRunResult;

const workload::BtLog& SmallLog() {
  static const workload::BtLog log =
      workload::GenerateBtLog(testutil::SmallWorkload());
  return log;
}

std::map<std::string, mr::Dataset> SuiteStore() {
  std::map<std::string, mr::Dataset> store;
  Status s = bt::LoadBtSuiteStore(SmallLog().events, &store);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return store;
}

Result<SuiteRunResult> RunSuite(
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries,
    const SuiteOptions& options = SuiteOptions(),
    mr::FaultInjector* injector = nullptr) {
  mr::LocalCluster cluster(/*num_machines=*/8);
  if (injector != nullptr) cluster.set_fault_injector(injector);
  auto store = SuiteStore();
  return RunPlanSuite(&cluster, queries, &store, options);
}

/// Each query run independently through RunPlan (fresh store and cluster so
/// the per-plan "frag_N" dataset names cannot collide), canonically sorted —
/// the reference RunPlanSuite must match byte-for-byte.
std::vector<std::vector<Event>> IndependentOutputs(
    const std::vector<std::pair<std::string, temporal::PlanNodePtr>>& queries,
    const framework::TimrOptions& options = framework::TimrOptions()) {
  std::vector<std::vector<Event>> outputs;
  for (const auto& [name, plan] : queries) {
    mr::LocalCluster cluster(/*num_machines=*/8);
    auto store = SuiteStore();
    auto run = framework::RunPlan(&cluster, plan, &store, options);
    EXPECT_TRUE(run.ok()) << name << ": " << run.status().ToString();
    std::vector<Event> out;
    if (run.ok()) out = std::move(run.ValueOrDie().output);
    temporal::SortEventsCanonical(&out);
    outputs.push_back(std::move(out));
  }
  return outputs;
}

void ExpectOutputsIdentical(const std::vector<std::vector<Event>>& a,
                            const SuiteRunResult& b) {
  ASSERT_EQ(a.size(), b.outputs.size());
  for (size_t q = 0; q < a.size(); ++q) {
    SCOPED_TRACE("query " + b.query_names[q]);
    testutil::ExpectEventsIdentical(a[q], b.outputs[q]);
  }
}

TEST(SharedSuite, BtSuiteMatchesIndependentRunsBitIdentical) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());
  ASSERT_GE(queries.size(), 15u);

  auto run = RunSuite(queries);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const SuiteRunResult& res = run.ValueOrDie();

  // Sharing must actually kick in: the bot-elimination / UBP prefixes repeat
  // across the catalog, so at least one shared stage has >= 2 consumers and
  // rows that every consumer would otherwise have recomputed ran once.
  ASSERT_FALSE(res.shared.empty());
  size_t multi_consumer = 0;
  for (const auto& s : res.shared) {
    EXPECT_GE(s.occurrences, 2u) << s.dataset;
    if (s.num_consumers >= 2) ++multi_consumer;
  }
  EXPECT_GE(multi_consumer, 1u);
  EXPECT_GT(res.rows_executed_once, 0u);

  ExpectOutputsIdentical(IndependentOutputs(queries), res);
}

TEST(SharedSuite, SingleQuerySuiteMatchesRunPlan) {
  auto all = bt::BtCqSuite(testutil::SmallBtConfig());
  std::vector<std::pair<std::string, temporal::PlanNodePtr>> one(
      all.begin(), all.begin() + 1);

  auto run = RunSuite(one);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectOutputsIdentical(IndependentOutputs(one), run.ValueOrDie());
}

TEST(SharedSuite, SharingOnOffBitIdentical) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());

  SuiteOptions off;
  off.share_fragments = false;
  auto base = RunSuite(queries, off);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_TRUE(base.ValueOrDie().shared.empty());

  auto shared = RunSuite(queries);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  EXPECT_FALSE(shared.ValueOrDie().shared.empty());

  ExpectOutputsIdentical(base.ValueOrDie().outputs, shared.ValueOrDie());
}

// Structurally identical plans whose UDOs are opaque (impure: the fingerprint
// pass salts them by identity) must NOT merge — each query keeps its own copy
// of the UDO fragment, and outputs still match independent runs.
TEST(SharedSuite, OpaqueUdoFragmentsDoNotMerge) {
  auto make_query = [](int64_t offset) {
    return Query::Input(bt::kBtInput, bt::UnifiedSchema())
        .Exchange(PartitionSpec::ByTime(/*span_width=*/12 * temporal::kHour,
                                        /*overlap=*/7 * temporal::kHour))
        .Udo(
            6 * temporal::kHour, temporal::kHour,
            [offset](temporal::Timestamp, temporal::Timestamp,
                     const std::vector<Event>& active) -> std::vector<Row> {
              return {Row{Value(static_cast<int64_t>(active.size()) + offset)}};
            },
            Schema::Of({{"Cnt", ValueType::kInt64}}));
  };
  // Same offset: byte-identical structure and behavior, but the UDO bodies
  // are distinct opaque callables — exactly the case that must not merge.
  std::vector<std::pair<std::string, temporal::PlanNodePtr>> queries;
  queries.emplace_back("udo_a", make_query(0).node());
  queries.emplace_back("udo_b", make_query(0).node());

  auto run = RunSuite(queries);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.ValueOrDie().shared.empty());
  ExpectOutputsIdentical(IndependentOutputs(queries), run.ValueOrDie());
}

TEST(SharedSuite, BitIdenticalWithExchangeElision) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());

  auto base = RunSuite(queries);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  SuiteOptions elide;
  elide.timr.elide_redundant_exchanges = true;
  auto elided = RunSuite(queries, elide);
  ASSERT_TRUE(elided.ok()) << elided.status().ToString();
  EXPECT_LE(elided.ValueOrDie().num_stages, base.ValueOrDie().num_stages);

  ExpectOutputsIdentical(base.ValueOrDie().outputs, elided.ValueOrDie());
}

TEST(SharedSuite, BitIdenticalUnderChaosSeeds) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());

  auto clean = RunSuite(queries);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  for (uint64_t seed : {uint64_t{7}, uint64_t{19}}) {
    mr::ChaosInjector injector(mr::FaultPlan::AllKinds(
        seed, /*p=*/0.12, /*straggler_seconds=*/0.01));
    auto chaotic = RunSuite(queries, SuiteOptions(), &injector);
    ASSERT_TRUE(chaotic.ok())
        << "seed " << seed << ": " << chaotic.status().ToString();
    EXPECT_GT(injector.total_injected(), 0) << "seed " << seed;
    ExpectOutputsIdentical(clean.ValueOrDie().outputs, chaotic.ValueOrDie());
  }
}

// Kill the merged job mid-way (every query output is a protected dataset in
// the checkpoint-cut check) and resume from the checkpoint: the restored-
// prefix run must still produce the clean suite's outputs exactly.
TEST(SharedSuite, KillAndResumeBitIdentical) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());

  auto clean = RunSuite(queries);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  const int num_stages = static_cast<int>(clean.ValueOrDie().num_stages);
  ASSERT_GT(num_stages, 2);

  mr::CheckpointStore checkpoint;
  {
    SuiteOptions opts;
    opts.timr.checkpoint = &checkpoint;
    opts.timr.chaos_kill_after_stages = num_stages / 2;
    auto killed = RunSuite(queries, opts);
    ASSERT_FALSE(killed.ok());
    EXPECT_NE(killed.status().message().find("chaos kill"), std::string::npos);
  }
  ASSERT_EQ(checkpoint.num_stages(), static_cast<size_t>(num_stages / 2));

  SuiteOptions opts;
  opts.timr.checkpoint = &checkpoint;
  auto resumed = RunSuite(queries, opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  int recovered = 0;
  for (const auto& s : resumed.ValueOrDie().job_stats.stages) {
    if (s.recovered_from_checkpoint) ++recovered;
  }
  EXPECT_EQ(recovered, num_stages / 2);
  ExpectOutputsIdentical(clean.ValueOrDie().outputs, resumed.ValueOrDie());
}

// Adaptive skew-aware repartitioning composes with shared-fragment suite
// execution: on a Zipf-skewed log the merged BT suite splits at least one hot
// keyed shuffle while still sharing fragments, and every per-query output
// matches the skew-off merged run byte-for-byte.
TEST(SharedSuite, AdaptiveSkewOnOffBitIdentical) {
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());
  const workload::BtLog log =
      workload::GenerateBtLog(testutil::SkewedWorkload());

  auto run_suite = [&](const SuiteOptions& options) {
    mr::LocalCluster cluster(/*num_machines=*/8);
    std::map<std::string, mr::Dataset> store;
    Status s = bt::LoadBtSuiteStore(log.events, &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return RunPlanSuite(&cluster, queries, &store, options);
  };

  auto off = run_suite(SuiteOptions());
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  SuiteOptions skew;
  skew.timr.skew.adaptive_repartition = true;
  skew.timr.skew.skew_ratio_threshold = 2.0;
  skew.timr.skew.hot_key_fanout = 4;
  skew.timr.skew.min_partition_rows = 64;
  skew.timr.skew.sample_shift = 3;
  auto on = run_suite(skew);
  ASSERT_TRUE(on.ok()) << on.status().ToString();

  int splits = 0;
  for (const auto& s : on.ValueOrDie().job_stats.stages) {
    splits += s.partitions_split;
  }
  EXPECT_GT(splits, 0);
  EXPECT_FALSE(on.ValueOrDie().shared.empty());

  ExpectOutputsIdentical(off.ValueOrDie().outputs, on.ValueOrDie());
}

TEST(SharedSuite, RejectsDuplicateQueryNames) {
  auto all = bt::BtCqSuite(testutil::SmallBtConfig());
  std::vector<std::pair<std::string, temporal::PlanNodePtr>> dup;
  dup.emplace_back("same", all[0].second);
  dup.emplace_back("same", all[1].second);
  auto run = RunSuite(dup);
  ASSERT_FALSE(run.ok());
  EXPECT_NE(run.status().message().find("duplicate query name"),
            std::string::npos);
}

}  // namespace
}  // namespace timr
