// RPC wire-format tests (mr/rpc.h, mr/worker.h): byte-exact golden frames,
// request/response round-trips, and a malformed-frame corpus — truncated,
// oversized, garbage, bad-magic, bad-hash — that must surface as structured
// kRpcError, never a crash, hang, or runaway allocation. The row
// serialization golden test pins the compact shuffle encoding (the seed for
// ROADMAP item 1's on-disk format): a byte change there is a format break.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/hash.h"
#include "mr/rpc.h"
#include "mr/worker.h"

namespace timr::mr {
namespace {

using rpc::DecodeFrame;
using rpc::DecodeResult;
using rpc::EncodeFrame;
using rpc::Frame;
using rpc::kFrameHeaderBytes;
using rpc::kFrameMagic;
using rpc::kMaxFramePayload;
using rpc::MsgType;

Schema TestSchema() {
  return Schema::Of({{"Time", ValueType::kInt64},
                     {"Key", ValueType::kString},
                     {"Score", ValueType::kDouble}});
}

std::vector<Row> TestRows() {
  return {
      {Value(int64_t{1}), Value("alpha"), Value(0.5)},
      {Value(int64_t{2}), Value::Interned("beta"), Value(-1.25)},
      {Value(int64_t{-7}), Value(std::string()), Value(1e300)},
  };
}

// ------------------------------------------------------------- framing ----

TEST(RpcFrame, GoldenHeaderLayout) {
  std::string out;
  EncodeFrame(MsgType::kMapRequest, "abc", &out);
  ASSERT_EQ(out.size(), kFrameHeaderBytes + 3);

  uint32_t magic;
  std::memcpy(&magic, out.data(), 4);
  EXPECT_EQ(magic, kFrameMagic);
  EXPECT_EQ(static_cast<uint8_t>(out[4]), static_cast<uint8_t>(MsgType::kMapRequest));
  EXPECT_EQ(out[5], 0);  // padding
  EXPECT_EQ(out[6], 0);
  EXPECT_EQ(out[7], 0);
  uint64_t len, hash;
  std::memcpy(&len, out.data() + 8, 8);
  std::memcpy(&hash, out.data() + 16, 8);
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(hash, HashBytes("abc", 3));
  EXPECT_EQ(out.substr(kFrameHeaderBytes), "abc");
}

TEST(RpcFrame, RoundTrip) {
  std::string payload(1000, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31 + 7);
  }
  std::string out;
  EncodeFrame(MsgType::kReduceResponse, payload, &out);
  DecodeResult r = DecodeFrame(out);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_FALSE(r.needs_more);
  EXPECT_EQ(r.frame.type, MsgType::kReduceResponse);
  EXPECT_EQ(r.frame.payload, payload);
  EXPECT_EQ(r.consumed, out.size());
}

TEST(RpcFrame, EmptyPayloadRoundTrip) {
  std::string out;
  EncodeFrame(MsgType::kHeartbeat, "", &out);
  ASSERT_EQ(out.size(), kFrameHeaderBytes);
  DecodeResult r = DecodeFrame(out);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.frame.type, MsgType::kHeartbeat);
  EXPECT_TRUE(r.frame.payload.empty());
}

TEST(RpcFrame, EveryTruncationNeedsMoreNeverErrors) {
  // A truncated-but-valid prefix must ask for more bytes, not error: the
  // stream reader accumulates partial reads.
  std::string out;
  EncodeFrame(MsgType::kMapResponse, "payload-bytes", &out);
  for (size_t n = 0; n < out.size(); ++n) {
    DecodeResult r = DecodeFrame(std::string_view(out).substr(0, n));
    EXPECT_TRUE(r.status.ok()) << "prefix " << n << ": " << r.status.ToString();
    EXPECT_TRUE(r.needs_more) << "prefix " << n;
    EXPECT_EQ(r.consumed, 0u);
  }
}

TEST(RpcFrame, BadMagicIsRpcError) {
  std::string out;
  EncodeFrame(MsgType::kHello, "x", &out);
  out[0] = 'X';
  DecodeResult r = DecodeFrame(out);
  EXPECT_EQ(r.status.code(), StatusCode::kRpcError);
}

TEST(RpcFrame, UnknownTypeIsRpcError) {
  std::string out;
  EncodeFrame(MsgType::kHello, "x", &out);
  out[4] = static_cast<char>(0xEE);
  DecodeResult r = DecodeFrame(out);
  EXPECT_EQ(r.status.code(), StatusCode::kRpcError);
}

TEST(RpcFrame, OversizedLengthIsRpcErrorNotAllocation) {
  // A corrupt length field must be rejected from the header alone — the
  // receiver must not trust it enough to allocate.
  std::string out;
  EncodeFrame(MsgType::kHello, "x", &out);
  const uint64_t huge = kMaxFramePayload + 1;
  std::memcpy(&out[8], &huge, 8);
  DecodeResult r = DecodeFrame(out);
  EXPECT_EQ(r.status.code(), StatusCode::kRpcError);
}

TEST(RpcFrame, PayloadHashMismatchIsRpcError) {
  std::string out;
  EncodeFrame(MsgType::kMapRequest, "sensitive-payload", &out);
  out[kFrameHeaderBytes + 3] ^= 0x40;  // flip one payload bit
  DecodeResult r = DecodeFrame(out);
  EXPECT_EQ(r.status.code(), StatusCode::kRpcError);
}

TEST(RpcFrame, GarbageBytesNeverCrash) {
  // Deterministic garbage corpus: every outcome must be a structured state
  // (error / needs_more / frame), never a fault. Seeds chosen arbitrarily.
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int trial = 0; trial < 200; ++trial) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    std::string garbage((x >> 33) % 96, '\0');
    uint64_t y = x;
    for (char& c : garbage) {
      y = y * 6364136223846793005ULL + 1442695040888963407ULL;
      c = static_cast<char>(y >> 56);
    }
    DecodeResult r = DecodeFrame(garbage);
    if (r.status.ok() && !r.needs_more) {
      // Only a byte-perfect frame may parse; with random magic this is
      // effectively unreachable, but it would still be a valid outcome.
      EXPECT_LE(r.consumed, garbage.size());
    }
  }
}

TEST(RpcFrame, SocketSendRecvRoundTrip) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(rpc::SendFrame(sv[0], MsgType::kShutdown, "bye").ok());
  Frame f;
  ASSERT_TRUE(rpc::RecvFrame(sv[1], &f).ok());
  EXPECT_EQ(f.type, MsgType::kShutdown);
  EXPECT_EQ(f.payload, "bye");
  close(sv[0]);
  close(sv[1]);
}

TEST(RpcFrame, PeerClosingMidFrameIsRpcError) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::string out;
  EncodeFrame(MsgType::kMapResponse, "this frame will be cut short", &out);
  // Send only half, then close: the reader must get a structured error.
  ASSERT_EQ(send(sv[0], out.data(), out.size() / 2, 0),
            static_cast<ssize_t>(out.size() / 2));
  close(sv[0]);
  Frame f;
  Status st = rpc::RecvFrame(sv[1], &f);
  EXPECT_EQ(st.code(), StatusCode::kRpcError);
  close(sv[1]);
}

TEST(RpcFrame, EofBeforeHeaderIsPeerClosed) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  close(sv[0]);
  Frame f;
  Status st = rpc::RecvFrame(sv[1], &f);
  EXPECT_EQ(st.code(), StatusCode::kRpcError);
  close(sv[1]);
}

TEST(RpcFrame, SendToClosedPeerIsRpcErrorNotSignal) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  close(sv[1]);
  // Large enough to defeat the socket buffer on the first or second send;
  // MSG_NOSIGNAL must turn SIGPIPE into an error status.
  std::string big(1 << 20, 'z');
  Status st = rpc::SendFrame(sv[0], MsgType::kMapRequest, big);
  if (st.ok()) st = rpc::SendFrame(sv[0], MsgType::kMapRequest, big);
  EXPECT_EQ(st.code(), StatusCode::kRpcError);
  close(sv[0]);
}

// -------------------------------------------- compact row serialization ----

TEST(RpcRows, SerializationGolden) {
  // Byte-exact pin of the shuffle row encoding (tagged cells, u64 counts).
  // If this test fails, the wire/on-disk format changed — that must be a
  // deliberate, versioned decision, not a refactoring accident.
  rpc::WireWriter w;
  w.Rows({{Value(int64_t{5}), Value("ab"), Value(1.5)}});
  const std::string& b = w.buf();

  std::string expect;
  auto u64 = [&expect](uint64_t v) {
    expect.append(reinterpret_cast<const char*>(&v), 8);
  };
  u64(1);                    // row count
  u64(3);                    // cell count
  expect.push_back('\x00');  // kInt64 tag
  u64(5);
  expect.push_back('\x02');  // kString tag
  u64(2);
  expect += "ab";
  expect.push_back('\x01');  // kDouble tag
  const double d = 1.5;
  expect.append(reinterpret_cast<const char*>(&d), 8);
  EXPECT_EQ(b, expect);
}

TEST(RpcRows, RowsRoundTripExactly) {
  rpc::WireWriter w;
  w.Rows(TestRows());
  w.WriteSchema(TestSchema());
  rpc::WireReader r(w.buf());
  std::vector<Row> rows;
  Schema schema;
  ASSERT_TRUE(r.Rows(&rows));
  ASSERT_TRUE(r.ReadSchema(&schema));
  ASSERT_TRUE(r.AtEnd());
  EXPECT_EQ(rows, TestRows());  // interned/owned strings compare by content
  EXPECT_EQ(schema.ToString(), TestSchema().ToString());
}

TEST(RpcRows, TruncatedPayloadNeverCrashes) {
  rpc::WireWriter w;
  w.Rows(TestRows());
  const std::string full = w.buf();
  for (size_t n = 0; n < full.size(); ++n) {
    rpc::WireReader r(std::string_view(full).substr(0, n));
    std::vector<Row> rows;
    // Every strict prefix must fail cleanly (poisoned reader, no fault).
    EXPECT_FALSE(r.Rows(&rows) && r.AtEnd()) << "prefix " << n;
  }
}

TEST(RpcRows, CorruptCountFieldIsBounded) {
  // A row count of 2^60 must not allocate 2^60 rows: the reader bounds
  // counts against the remaining payload bytes.
  rpc::WireWriter w;
  const uint64_t absurd = uint64_t{1} << 60;
  w.U64(absurd);
  rpc::WireReader r(w.buf());
  std::vector<Row> rows;
  EXPECT_FALSE(r.Rows(&rows));
  EXPECT_FALSE(r.ok());
}

TEST(RpcRows, FinishFlagsTrailingBytes) {
  rpc::WireWriter w;
  w.U32(7);
  w.U8(9);  // trailing garbage after the number the reader consumes
  rpc::WireReader r(w.buf());
  uint32_t v;
  ASSERT_TRUE(r.U32(&v));
  Status st = r.Finish("test");
  EXPECT_EQ(st.code(), StatusCode::kRpcError);
}

// --------------------------------------------- request/response payloads ----

TEST(RpcMessages, MapRequestRoundTrip) {
  MapTaskSpec spec;
  spec.task_id = 42;
  spec.dispatch = 3;
  spec.input_index = 1;
  spec.src_partition = 5;
  spec.begin = 100;
  spec.end = 200;
  spec.parts = 8;
  spec.quarantine = true;
  spec.skew_enabled = true;
  spec.may_move = true;
  spec.sample_mask = 0xFF;
  std::string payload;
  wire::EncodeMapRequest(spec, &payload);

  MapTaskSpec got;
  ASSERT_TRUE(wire::DecodeMapRequest(payload, &got).ok());
  EXPECT_EQ(got.task_id, spec.task_id);
  EXPECT_EQ(got.dispatch, spec.dispatch);
  EXPECT_EQ(got.input_index, spec.input_index);
  EXPECT_EQ(got.src_partition, spec.src_partition);
  EXPECT_EQ(got.begin, spec.begin);
  EXPECT_EQ(got.end, spec.end);
  EXPECT_EQ(got.parts, spec.parts);
  EXPECT_EQ(got.quarantine, spec.quarantine);
  EXPECT_EQ(got.skew_enabled, spec.skew_enabled);
  EXPECT_EQ(got.may_move, spec.may_move);
  EXPECT_EQ(got.sample_mask, spec.sample_mask);

  uint32_t tid, disp;
  ASSERT_TRUE(wire::PeekIds(payload, &tid, &disp));
  EXPECT_EQ(tid, 42u);
  EXPECT_EQ(disp, 3u);
}

TEST(RpcMessages, MapResponseRoundTripWithResult) {
  wire::MapResponse resp;
  resp.task_id = 9;
  resp.dispatch = 1;
  resp.status = Status::OK();
  resp.result.buckets = {{TestRows()[0]}, {}, {TestRows()[1], TestRows()[2]}};
  resp.result.quarantined = {{Value(int64_t{0}), Value("bad")}};
  resp.result.first_bad = "row 3: arity mismatch";
  resp.result.rows_in = 17;
  resp.result.rows_shuffled = 15;
  resp.result.sketch = {{0xabcdef, 4}, {0x123456, 2}};
  std::string payload;
  wire::EncodeMapResponse(resp, &payload);

  wire::MapResponse got;
  ASSERT_TRUE(wire::DecodeMapResponse(payload, &got).ok());
  EXPECT_EQ(got.task_id, 9u);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.result.buckets, resp.result.buckets);
  EXPECT_EQ(got.result.quarantined, resp.result.quarantined);
  EXPECT_EQ(got.result.first_bad, resp.result.first_bad);
  EXPECT_EQ(got.result.rows_in, 17u);
  EXPECT_EQ(got.result.rows_shuffled, 15u);
  EXPECT_EQ(got.result.sketch, resp.result.sketch);
}

TEST(RpcMessages, MapResponseCarriesErrorStatus) {
  wire::MapResponse resp;
  resp.task_id = 2;
  resp.dispatch = 7;
  resp.status = Status::ExecutionError("partitioner produced target 9 out of range");
  std::string payload;
  wire::EncodeMapResponse(resp, &payload);
  wire::MapResponse got;
  ASSERT_TRUE(wire::DecodeMapResponse(payload, &got).ok());
  EXPECT_EQ(got.status.code(), StatusCode::kExecutionError);
  EXPECT_EQ(got.status.message(), resp.status.message());
}

TEST(RpcMessages, ReduceRequestRoundTripAndZeroCopyOverloadAgree) {
  wire::ReduceRequest req;
  req.task_id = 4;
  req.dispatch = 2;
  req.attempt = 1;
  req.base_partition = 3;
  req.sort_output = true;
  req.presorted = true;
  req.fault_kind = FaultKind::kStraggler;
  req.straggler_seconds = 0.125;
  req.input_schemas = {TestSchema()};
  req.buckets = {TestRows()};
  std::string a, b;
  wire::EncodeReduceRequest(req, &a);
  // The driver-side overload reads schemas/buckets from external storage; it
  // must produce identical bytes.
  wire::ReduceRequest bare = req;
  bare.input_schemas.clear();
  bare.buckets.clear();
  wire::EncodeReduceRequest(bare, req.input_schemas, req.buckets, &b);
  EXPECT_EQ(a, b);

  wire::ReduceRequest got;
  ASSERT_TRUE(wire::DecodeReduceRequest(a, &got).ok());
  EXPECT_EQ(got.task_id, 4u);
  EXPECT_EQ(got.attempt, 1u);
  EXPECT_EQ(got.base_partition, 3u);
  EXPECT_TRUE(got.sort_output);
  EXPECT_TRUE(got.presorted);
  EXPECT_EQ(got.fault_kind, FaultKind::kStraggler);
  EXPECT_EQ(got.straggler_seconds, 0.125);
  EXPECT_EQ(got.buckets, req.buckets);
}

TEST(RpcMessages, ReduceResponseRoundTrip) {
  wire::ReduceResponse resp;
  resp.task_id = 11;
  resp.dispatch = 0;
  resp.cpu_seconds = 0.25;
  resp.sort_seconds = 0.0625;
  resp.status = Status::OK();
  resp.rows = TestRows();
  std::string payload;
  wire::EncodeReduceResponse(resp, &payload);
  wire::ReduceResponse got;
  ASSERT_TRUE(wire::DecodeReduceResponse(payload, &got).ok());
  EXPECT_EQ(got.task_id, 11u);
  EXPECT_EQ(got.cpu_seconds, 0.25);
  EXPECT_EQ(got.sort_seconds, 0.0625);
  EXPECT_EQ(got.rows, TestRows());
}

TEST(RpcMessages, EveryDecoderRejectsTruncationCleanly) {
  // Shared property over all four payload codecs: every strict prefix of a
  // valid payload decodes to an error, never a crash or an accepted value.
  std::string payloads[4];
  MapTaskSpec spec;
  spec.task_id = 1;
  wire::EncodeMapRequest(spec, &payloads[0]);
  wire::MapResponse mresp;
  mresp.result.buckets = {TestRows()};
  wire::EncodeMapResponse(mresp, &payloads[1]);
  wire::ReduceRequest rreq;
  rreq.input_schemas = {TestSchema()};
  rreq.buckets = {TestRows()};
  wire::EncodeReduceRequest(rreq, &payloads[2]);
  wire::ReduceResponse rresp;
  rresp.rows = TestRows();
  wire::EncodeReduceResponse(rresp, &payloads[3]);

  for (int which = 0; which < 4; ++which) {
    const std::string& full = payloads[which];
    for (size_t n = 0; n < full.size(); ++n) {
      const std::string_view prefix(full.data(), n);
      Status st;
      switch (which) {
        case 0: {
          MapTaskSpec s;
          st = wire::DecodeMapRequest(prefix, &s);
          break;
        }
        case 1: {
          wire::MapResponse r;
          st = wire::DecodeMapResponse(prefix, &r);
          break;
        }
        case 2: {
          wire::ReduceRequest r;
          st = wire::DecodeReduceRequest(prefix, &r);
          break;
        }
        case 3: {
          wire::ReduceResponse r;
          st = wire::DecodeReduceResponse(prefix, &r);
          break;
        }
      }
      EXPECT_FALSE(st.ok()) << "codec " << which << " prefix " << n;
    }
  }
}

}  // namespace
}  // namespace timr::mr
