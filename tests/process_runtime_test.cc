// Multi-process runtime tests (mr/driver.h, mr/worker.h): the BT pipeline and
// the shared 20-CQ suite must produce byte-identical output multi-process vs
// in-process for any worker count, and keep producing it under process-level
// chaos — real SIGKILLs in targeted windows (between map-commit and
// reduce-fetch, during a heartbeat gap, mid-shuffle-transfer), truncated
// shuffle payloads, dropped/delayed RPC messages, and permanent worker loss
// that degrades the stage down to in-process execution (paper §III-C.1:
// failure handling must be invisible in the output).
//
// Test suites are named MultiProcess / ProcsChaos so sanitizer CI that cannot
// follow fork() (TSan) can exclude them by name; under such builds process
// mode also self-gates via ProcessModeSupported().

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bt_test_util.h"
#include "bt/queries.h"
#include "bt/schema.h"
#include "bt/suite_runner.h"
#include "mr/checkpoint.h"
#include "mr/cluster.h"
#include "mr/driver.h"
#include "mr/fault.h"
#include "timr/suite.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr {
namespace {

using mr::ProcessFaultPlan;
using mr::ProcessOptions;
using mr::ScriptedProcessKill;

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("TIMR_CHAOS_SEEDS")) {
    std::vector<uint64_t> seeds;
    uint64_t v = 0;
    bool have = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        v = v * 10 + static_cast<uint64_t>(*c - '0');
        have = true;
      } else {
        if (have) seeds.push_back(v);
        v = 0;
        have = false;
        if (*c == '\0') break;
      }
    }
    if (!seeds.empty()) return seeds;
  }
  return {7, 19, 42};
}

/// Chaos-friendly transport knobs: tight enough that dropped responses and
/// hung workers are detected in test time, loose enough that a legitimate
/// small-workload task never trips them spuriously (and if one ever did, the
/// runtime recovers by re-dispatch — correctness is unaffected).
ProcessOptions ChaosTransport(int workers) {
  ProcessOptions p;
  p.workers = workers;
  p.rpc_timeout_seconds = 5.0;
  p.heartbeat_interval_seconds = 0.02;
  p.heartbeat_deadline_seconds = 1.0;
  p.backoff_base_seconds = 0.005;
  p.backoff_cap_seconds = 0.05;
  return p;
}

testutil::BtRun RunBtProcess(const ProcessOptions& process,
                             mr::FaultInjector* injector = nullptr) {
  testutil::BtRunConfig cfg;
  cfg.injector = injector;
  cfg.options.process = process;
  return testutil::RunBtJob(cfg);
}

int SumWorkerRestarts(const mr::JobStats& stats) {
  int n = 0;
  for (const auto& s : stats.stages) n += s.worker_restarts;
  return n;
}

int SumRpcRetries(const mr::JobStats& stats) {
  int n = 0;
  for (const auto& s : stats.stages) n += s.rpc_retries;
  return n;
}

// ------------------------------------------------------------ fault-free ----

TEST(MultiProcess, ClusterStageBitIdenticalToThreadMode) {
  // Cheapest possible end-to-end check straight at the cluster API: one
  // keyed stage, thread mode vs a 2-worker gang, byte-compared.
  Schema schema = Schema::Of({{"Time", ValueType::kInt64},
                              {"Key", ValueType::kInt64},
                              {"Val", ValueType::kString}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 5000; ++i) {
    rows.push_back({Value(i % 97), Value(i % 13),
                    Value("payload-" + std::to_string(i % 31))});
  }
  auto make_store = [&] {
    std::map<std::string, mr::Dataset> store;
    store["in"] = mr::Dataset::FromRows(schema, rows);
    return store;
  };
  mr::MRStage stage;
  stage.name = "identity";
  stage.inputs = {"in"};
  stage.output = "out";
  stage.output_schema = schema;
  stage.partition_fn = mr::HashPartitioner({{1}});
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    *output = inputs[0];
    return Status::OK();
  };

  mr::LocalCluster threads(4, 2);
  auto thread_store = make_store();
  mr::StageStats tstats;
  ASSERT_TRUE(threads.RunStage(stage, &thread_store, &tstats).ok());

  mr::LocalCluster procs(4, 2);
  ProcessOptions popt;
  popt.workers = 2;
  procs.set_process_options(popt);
  auto proc_store = make_store();
  mr::StageStats pstats;
  ASSERT_TRUE(procs.RunStage(stage, &proc_store, &pstats).ok());

  const mr::Dataset& a = thread_store.at("out");
  const mr::Dataset& b = proc_store.at("out");
  ASSERT_EQ(a.num_partitions(), b.num_partitions());
  for (size_t p = 0; p < a.num_partitions(); ++p) {
    EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p;
  }
  EXPECT_EQ(tstats.rows_in, pstats.rows_in);
  EXPECT_EQ(tstats.rows_shuffled, pstats.rows_shuffled);
  EXPECT_EQ(tstats.rows_out, pstats.rows_out);
  if (mr::ProcessModeSupported()) {
    EXPECT_EQ(pstats.workers, 2);
    EXPECT_EQ(tstats.workers, 0);
  }
}

TEST(MultiProcess, BtPipelineBitIdenticalAcrossWorkerCounts) {
  testutil::BtRun clean = testutil::RunBtJob(0);
  ASSERT_FALSE(clean.stats.stages.empty());

  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ProcessOptions popt;
    popt.workers = workers;
    testutil::BtRun run = RunBtProcess(popt);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    testutil::ExpectEventsIdentical(clean.output, run.output);
    testutil::ExpectStoresBitIdentical(clean.store, run.store);
    if (mr::ProcessModeSupported()) {
      for (const auto& s : run.stats.stages) {
        EXPECT_EQ(s.workers, workers) << s.name;
      }
    }
  }
}

TEST(MultiProcess, ComposesWithAppLevelFaultInjection) {
  // The injector lives in the driver (one draw per attempt, shipped to the
  // worker inside the reduce request): task-level chaos must compose with
  // the process boundary and stay bit-identical.
  testutil::BtRun clean = testutil::RunBtJob(0);

  mr::ChaosInjector injector(
      mr::FaultPlan::AllKinds(ChaosSeeds().front(), /*p=*/0.12,
                              /*straggler_seconds=*/0.01));
  ProcessOptions popt;
  popt.workers = 2;
  testutil::BtRun run = RunBtProcess(popt, &injector);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(injector.total_injected(), 0);
  int retries = 0;
  for (const auto& s : run.stats.stages) retries += s.retried_tasks;
  EXPECT_GT(retries, 0);
  testutil::ExpectEventsIdentical(clean.output, run.output);
  testutil::ExpectStoresBitIdentical(clean.store, run.store);
}

TEST(MultiProcess, SharedSuiteWithAdaptiveSkewBitIdentical) {
  // The full composition: 20-CQ shared-fragment suite + adaptive skew
  // splits + multi-process execution must match the in-process merged run
  // byte for byte.
  const auto queries = bt::BtCqSuite(testutil::SmallBtConfig());
  const workload::BtLog log =
      workload::GenerateBtLog(testutil::SkewedWorkload());

  auto run_suite = [&](const framework::SuiteOptions& options) {
    mr::LocalCluster cluster(/*num_machines=*/8);
    std::map<std::string, mr::Dataset> store;
    Status s = bt::LoadBtSuiteStore(log.events, &store);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return framework::RunPlanSuite(&cluster, queries, &store, options);
  };

  framework::SuiteOptions skew;
  skew.timr.skew.adaptive_repartition = true;
  skew.timr.skew.skew_ratio_threshold = 2.0;
  skew.timr.skew.hot_key_fanout = 4;
  skew.timr.skew.min_partition_rows = 64;
  skew.timr.skew.sample_shift = 3;

  auto in_process = run_suite(skew);
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();

  framework::SuiteOptions procs = skew;
  procs.timr.process.workers = 2;
  auto multi = run_suite(procs);
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();

  int splits = 0;
  for (const auto& s : multi.ValueOrDie().job_stats.stages) {
    splits += s.partitions_split;
  }
  EXPECT_GT(splits, 0);
  EXPECT_FALSE(multi.ValueOrDie().shared.empty());

  const auto& a = in_process.ValueOrDie();
  const auto& b = multi.ValueOrDie();
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (size_t q = 0; q < a.outputs.size(); ++q) {
    SCOPED_TRACE("query " + a.query_names[q]);
    testutil::ExpectEventsIdentical(a.outputs[q], b.outputs[q]);
  }
}

TEST(MultiProcess, CheckpointKillAndResumeBitIdentical) {
  // Driver death (chaos kill after N stages) + resume, both in process mode:
  // the resumed store must match a clean in-process run exactly.
  testutil::BtRun clean = testutil::RunBtJob(0);

  mr::CheckpointStore checkpoint;
  {
    testutil::BtRunConfig cfg;
    cfg.options.process.workers = 2;
    cfg.options.checkpoint = &checkpoint;
    cfg.options.chaos_kill_after_stages = 2;
    testutil::BtRun killed = testutil::RunBtJob(cfg);
    ASSERT_FALSE(killed.status.ok());
    EXPECT_NE(killed.status.message().find("chaos kill"), std::string::npos);
  }
  ASSERT_GE(checkpoint.num_stages(), 1u);

  testutil::BtRunConfig resume;
  resume.options.process.workers = 2;
  resume.options.checkpoint = &checkpoint;
  testutil::BtRun resumed = testutil::RunBtJob(resume);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  testutil::ExpectEventsIdentical(clean.output, resumed.output);
  testutil::ExpectStoresBitIdentical(clean.store, resumed.store);
}

// ---------------------------------------------------- targeted loss windows --

void RunKillWindowTest(ScriptedProcessKill::Window window,
                       bool expect_heartbeat_timeout = false) {
  if (!mr::ProcessModeSupported()) {
    GTEST_SKIP() << "process mode unsupported in this build";
  }
  testutil::BtRun clean = testutil::RunBtJob(0);

  ProcessOptions popt = ChaosTransport(/*workers=*/2);
  ScriptedProcessKill kill;
  kill.stage = "*";
  kill.window = window;
  kill.worker_index = 0;
  popt.chaos.scripted.push_back(kill);

  testutil::BtRun run = RunBtProcess(popt);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  // The dead worker must have been noticed and replaced (or its task
  // re-dispatched) — and committed work must never be lost, which the
  // bit-identity comparison below proves end to end.
  EXPECT_GT(SumWorkerRestarts(run.stats) + SumRpcRetries(run.stats), 0);
  if (expect_heartbeat_timeout) {
    int hb = 0;
    for (const auto& s : run.stats.stages) hb += s.heartbeat_timeouts;
    EXPECT_GE(hb, 1);
  }
  testutil::ExpectEventsIdentical(clean.output, run.output);
  testutil::ExpectStoresBitIdentical(clean.store, run.store);
}

TEST(ProcsChaos, SigkillBetweenMapCommitAndReduceFetch) {
  // The worker dies on receiving its first reduce request — after its map
  // results were committed. The driver must requeue the reduce task without
  // re-running the committed map work into a different answer.
  RunKillWindowTest(ScriptedProcessKill::Window::kOnReduceRequest);
}

TEST(ProcsChaos, SigkillIdleAfterMapResponse) {
  // Idle death right after shipping a map response: detected by EOF on the
  // socket (reader thread), not by any task timeout.
  RunKillWindowTest(ScriptedProcessKill::Window::kAfterMapResponse);
}

TEST(ProcsChaos, TruncatedShuffleTransferMidReduceResponse) {
  // Mid-shuffle-transfer loss: the worker truncates its reduce response
  // frame and dies. The driver must reject the partial frame (hash/length
  // check) and re-dispatch rather than committing a short read.
  RunKillWindowTest(ScriptedProcessKill::Window::kMidReduceResponse);
}

TEST(ProcsChaos, HungWorkerCaughtByHeartbeatDeadline) {
  // The worker stops heartbeating and responding without dying. Only the
  // heartbeat deadline can catch this (the socket stays open), within
  // heartbeat_deadline_seconds rather than the much larger RPC timeout.
  RunKillWindowTest(ScriptedProcessKill::Window::kHangSilently,
                    /*expect_heartbeat_timeout=*/true);
}

TEST(ProcsChaos, PermanentWorkerLossDegradesToInProcess) {
  if (!mr::ProcessModeSupported()) {
    GTEST_SKIP() << "process mode unsupported in this build";
  }
  testutil::BtRun clean = testutil::RunBtJob(0);

  // Every spawned worker dies on its first reduce request, and the respawn
  // budget is tiny: the stage must degrade to in-process execution instead
  // of failing. (Scripted windows are one-shot per *process*, so every
  // respawned worker dies again.)
  ProcessOptions popt = ChaosTransport(/*workers=*/1);
  popt.max_worker_restarts = 1;
  ScriptedProcessKill kill;
  kill.stage = "*";
  kill.window = ScriptedProcessKill::Window::kOnReduceRequest;
  kill.worker_index = 0;
  popt.chaos.scripted.push_back(kill);

  testutil::BtRun run = RunBtProcess(popt);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(SumWorkerRestarts(run.stats), 0);
  testutil::ExpectEventsIdentical(clean.output, run.output);
  testutil::ExpectStoresBitIdentical(clean.store, run.store);
}

// ----------------------------------------------------- probabilistic chaos --

TEST(ProcsChaos, TruncatedResponsesEveryFirstDispatch) {
  if (!mr::ProcessModeSupported()) {
    GTEST_SKIP() << "process mode unsupported in this build";
  }
  testutil::BtRun clean = testutil::RunBtJob(0);

  // Deterministic worst case for the frame integrity check: every task's
  // first dispatch comes back truncated (and costs a worker).
  ProcessOptions popt = ChaosTransport(/*workers=*/2);
  popt.chaos.seed = 1;
  popt.chaos.truncate_probability = 1.0;
  popt.chaos.max_faulted_dispatch = 1;
  popt.max_worker_restarts = 64;

  testutil::BtRun run = RunBtProcess(popt);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(SumRpcRetries(run.stats), 0);
  EXPECT_GT(SumWorkerRestarts(run.stats), 0);
  testutil::ExpectEventsIdentical(clean.output, run.output);
  testutil::ExpectStoresBitIdentical(clean.store, run.store);
}

TEST(ProcsChaos, BtJobBitIdenticalUnderSeededProcessChaos) {
  if (!mr::ProcessModeSupported()) {
    GTEST_SKIP() << "process mode unsupported in this build";
  }
  testutil::BtRun clean = testutil::RunBtJob(0);

  int total_recoveries = 0;
  for (uint64_t seed : ChaosSeeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ProcessOptions popt = ChaosTransport(/*workers=*/2);
    popt.chaos = ProcessFaultPlan::AllKinds(seed, /*p=*/0.05,
                                            /*delay_seconds=*/0.002);
    popt.max_worker_restarts = 32;
    testutil::BtRun run = RunBtProcess(popt);
    ASSERT_TRUE(run.status.ok()) << run.status.ToString();
    total_recoveries += SumWorkerRestarts(run.stats) + SumRpcRetries(run.stats);
    testutil::ExpectEventsIdentical(clean.output, run.output);
    testutil::ExpectStoresBitIdentical(clean.store, run.store);
  }
  // Across the seed set, chaos must actually have fired.
  EXPECT_GT(total_recoveries, 0);
}

TEST(ProcsChaos, ProcessChaosComposesWithTaskChaos) {
  if (!mr::ProcessModeSupported()) {
    GTEST_SKIP() << "process mode unsupported in this build";
  }
  // Both fault layers at once: injected task faults (retried attempts) under
  // injected transport faults (killed workers, truncated/dropped frames).
  testutil::BtRun clean = testutil::RunBtJob(0);

  mr::ChaosInjector injector(
      mr::FaultPlan::AllKinds(ChaosSeeds().back(), /*p=*/0.08,
                              /*straggler_seconds=*/0.01));
  ProcessOptions popt = ChaosTransport(/*workers=*/2);
  popt.chaos = ProcessFaultPlan::AllKinds(ChaosSeeds().front(), /*p=*/0.04,
                                          /*delay_seconds=*/0.002);
  popt.max_worker_restarts = 32;
  testutil::BtRun run = RunBtProcess(popt, &injector);
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_GT(injector.total_injected(), 0);
  testutil::ExpectEventsIdentical(clean.output, run.output);
  testutil::ExpectStoresBitIdentical(clean.store, run.store);
}

}  // namespace
}  // namespace timr
