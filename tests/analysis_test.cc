// Tests for the static analysis passes (src/analysis/) and the runtime
// conformance checking behind TimrOptions::validate_streams.
//
// The four seeded corruptions from the verification plan each get a targeted
// test: wrong exchange key, too-narrow temporal span, cyclic fragment order,
// and a CTI regression at runtime. Every plan the repo actually runs (the BT
// pipeline in all annotation modes, the optimizer's outputs) must pass clean.

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/fragment_checks.h"
#include "analysis/plan_checks.h"
#include "bt/queries.h"
#include "bt/schema.h"
#include "mr/cluster.h"
#include "temporal/conformance.h"
#include "temporal/convert.h"
#include "temporal/executor.h"
#include "temporal/query.h"
#include "timr/fragments.h"
#include "timr/optimizer.h"
#include "timr/timr.h"

namespace timr::analysis {
namespace {

using framework::Fragment;
using framework::FragmentedPlan;
using framework::MakeFragments;
using temporal::AggregateSpec;
using temporal::ConformanceCheckOp;
using temporal::Event;
using temporal::kHour;
using temporal::OpKind;
using temporal::PartitionSpec;
using temporal::PlanNode;
using temporal::PlanNodePtr;
using temporal::Query;

const Schema kClickSchema = Schema::Of(
    {{"UserId", ValueType::kInt64}, {"AdId", ValueType::kInt64}});

Query ClickInput() { return Query::Input("Clicks", kClickSchema); }

bool HasErrorContaining(const AnalysisReport& report, const std::string& check,
                        const std::string& needle) {
  for (const Diagnostic& d : report.ForCheck(check)) {
    if (d.severity == Severity::kError &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// "schema"
// ---------------------------------------------------------------------------

TEST(SchemaCheck, AcceptsWellFormedPlan) {
  auto plan = ClickInput()
                  .GroupApply({"AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  EXPECT_TRUE(CheckPlanSchemas(plan).ToStatus().ok());
}

// The Query builder CHECK-validates eagerly, so malformed nodes are built by
// hand — exactly what a buggy rewrite or deserializer would produce.
TEST(SchemaCheck, RejectsAggregateOverMissingColumn) {
  auto agg = std::make_shared<PlanNode>();
  agg->kind = OpKind::kAggregate;
  agg->children = {ClickInput().node()};
  agg->agg = AggregateSpec::Sum("NoSuchColumn");
  AnalysisReport report = CheckPlanSchemas(agg);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "NoSuchColumn"))
      << report.ToString();
}

TEST(SchemaCheck, RejectsAggregateOverStringColumn) {
  Schema s = Schema::Of({{"Name", ValueType::kString}});
  auto agg = std::make_shared<PlanNode>();
  agg->kind = OpKind::kAggregate;
  agg->children = {Query::Input("S", s).node()};
  agg->agg = AggregateSpec::Sum("Name");
  AnalysisReport report = CheckPlanSchemas(agg);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "numeric"))
      << report.ToString();
}

TEST(SchemaCheck, RejectsJoinKeyArityMismatch) {
  auto join = std::make_shared<PlanNode>();
  join->kind = OpKind::kTemporalJoin;
  join->children = {ClickInput().node(), ClickInput().node()};
  join->left_keys = {"UserId", "AdId"};
  join->right_keys = {"UserId"};
  AnalysisReport report = CheckPlanSchemas(join);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "left key"))
      << report.ToString();
}

TEST(SchemaCheck, RejectsJoinKeyTypeMismatch) {
  Schema right = Schema::Of({{"UserId", ValueType::kString}});
  auto join = std::make_shared<PlanNode>();
  join->kind = OpKind::kTemporalJoin;
  join->children = {ClickInput().node(), Query::Input("R", right).node()};
  join->left_keys = {"UserId"};
  join->right_keys = {"UserId"};
  AnalysisReport report = CheckPlanSchemas(join);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "never compare equal"))
      << report.ToString();
}

TEST(SchemaCheck, RejectsExchangeOnMissingColumn) {
  auto ex = std::make_shared<PlanNode>();
  ex->kind = OpKind::kExchange;
  ex->children = {ClickInput().node()};
  ex->exchange = PartitionSpec::ByKeys({"Ghost"});
  // Make the plan rooted above the exchange so the root rule doesn't fire.
  auto sel = std::make_shared<PlanNode>();
  sel->kind = OpKind::kSelect;
  sel->pred = [](const Row&) { return true; };
  sel->children = {ex};
  AnalysisReport report = CheckPlanSchemas(sel);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "Ghost"))
      << report.ToString();
}

TEST(SchemaCheck, RejectsWrongArity) {
  auto uni = std::make_shared<PlanNode>();
  uni->kind = OpKind::kUnion;
  uni->children = {ClickInput().node()};  // needs two
  AnalysisReport report = CheckPlanSchemas(uni);
  EXPECT_TRUE(HasErrorContaining(report, "schema", "expects 2"))
      << report.ToString();
}

TEST(SchemaCheck, WarnsOnReservedColumnName) {
  Schema s = Schema::Of({{"Time", ValueType::kInt64}});
  AnalysisReport report = CheckPlanSchemas(Query::Input("S", s).node());
  EXPECT_FALSE(report.HasErrors());
  ASSERT_EQ(report.warning_count(), 1u) << report.ToString();
  EXPECT_NE(report.diagnostics[0].message.find("reserved"), std::string::npos);
}

// ---------------------------------------------------------------------------
// "exchange-placement" / "temporal-span" (seeded corruptions 1 and 2)
// ---------------------------------------------------------------------------

TEST(ExchangePlacement, RejectsKeysOutsideGroupingKey) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"AdId"}))
                  .GroupApply({"UserId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  ASSERT_TRUE(HasErrorContaining(report, "exchange-placement", "subset"))
      << report.ToString();
  // The diagnostic names both the offending exchange and the constraining op.
  const Diagnostic& d = report.ForCheck("exchange-placement")[0];
  EXPECT_NE(d.subject.find("{AdId}"), std::string::npos) << d.ToString();
  EXPECT_NE(d.message.find("GroupApply{UserId}"), std::string::npos)
      << d.ToString();
}

TEST(ExchangePlacement, AcceptsSubsetKeys) {
  // {UserId} is a subset of the grouping key {UserId, AdId}: every group is
  // fully contained in one partition (paper §III-A step 2).
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"UserId"}))
                  .GroupApply({"UserId", "AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  EXPECT_TRUE(CheckExchangePlacement(plan).ToStatus().ok());
}

TEST(ExchangePlacement, RejectsKeyedExchangeUnderGlobalAggregate) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"UserId"}))
                  .Window(kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  EXPECT_TRUE(HasErrorContaining(report, "exchange-placement", "global"))
      << report.ToString();
}

TEST(ExchangePlacement, RejectsNarrowTemporalSpan) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByTime(12 * kHour, kHour / 2))
                  .Window(6 * kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  ASSERT_TRUE(HasErrorContaining(report, "temporal-span", "overlap"))
      << report.ToString();
  EXPECT_NE(report.ForCheck("temporal-span")[0].message.find("21600"),
            std::string::npos)
      << "diagnostic should quote the downstream window";
}

TEST(ExchangePlacement, AcceptsCoveringTemporalSpan) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByTime(12 * kHour, 6 * kHour))
                  .Window(6 * kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  EXPECT_TRUE(CheckExchangePlacement(plan).ToStatus().ok());
}

TEST(ExchangePlacement, RejectsConflictingSpecsIntoOneFragment) {
  // Two different-keyed exchanges feeding the same Union violate footnote 1
  // (MakeFragments would reject this too; the checker names the nodes).
  Query source = ClickInput();
  Query left = source.Exchange(PartitionSpec::ByKeys({"UserId"}));
  Query right = source.Exchange(PartitionSpec::ByKeys({"AdId"}));
  auto plan = Query::Union(left, right)
                  .GroupApply({"UserId", "AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  EXPECT_TRUE(HasErrorContaining(report, "exchange-placement", "footnote 1"))
      << report.ToString();
}

TEST(ExchangePlacement, TranslatesConstraintThroughJoinKeys) {
  // The join's right side renames the key column; a constraint above the join
  // must translate through left_keys[i] == right_keys[i] before it applies.
  Schema right_schema = Schema::Of(
      {{"Uid", ValueType::kInt64}, {"KwCount", ValueType::kInt64}});
  Query right = Query::Input("Profiles", right_schema)
                    .Exchange(PartitionSpec::ByKeys({"AdId"}));  // wrong
  Query left = ClickInput().Exchange(PartitionSpec::ByKeys({"UserId"}));
  auto plan = Query::TemporalJoin(left, right, {"UserId"}, {"Uid"})
                  .GroupApply({"UserId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  // {AdId} on the right side violates the translated {Uid} constraint.
  EXPECT_TRUE(HasErrorContaining(report, "exchange-placement", "subset"))
      << report.ToString();
}

TEST(ExchangePlacement, RejectsRootExchange) {
  auto plan = ClickInput().Exchange(PartitionSpec::ByKeys({"UserId"})).node();
  AnalysisReport report = CheckExchangePlacement(plan);
  EXPECT_TRUE(HasErrorContaining(report, "exchange-placement", "root"))
      << report.ToString();
}

TEST(ExchangePlacement, RejectsExchangeInsideGroupSubplan) {
  auto plan = ClickInput()
                  .GroupApply({"UserId"},
                              [](Query g) {
                                return g.Exchange(
                                           PartitionSpec::ByKeys({"AdId"}))
                                    .Window(kHour)
                                    .Count();
                              })
                  .node();
  AnalysisReport report = CheckExchangePlacement(plan);
  EXPECT_TRUE(HasErrorContaining(report, "exchange-placement", "sub-plan"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// "split-exchange" (adaptive skew-aware repartitioning placement)
// ---------------------------------------------------------------------------

TEST(SplitExchange, AcceptsAdaptiveSplitOnKeyedExchange) {
  PartitionSpec spec = PartitionSpec::ByKeys({"UserId"});
  spec.adaptive_split = true;
  auto plan = ClickInput()
                  .Exchange(spec)
                  .GroupApply({"UserId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  EXPECT_TRUE(CheckSplitExchange(plan).ToStatus().ok());
  // And the full analyzer pipeline stays clean too.
  EXPECT_FALSE(AnalyzePlan(plan).HasErrors());
}

TEST(SplitExchange, RejectsAdaptiveSplitOnTemporalExchange) {
  // Overlapping temporal spans replicate boundary rows; hot-key splitting has
  // no lossless coalesce there, so opting in is a plan error.
  PartitionSpec spec = PartitionSpec::ByTime(12 * kHour, 6 * kHour);
  spec.adaptive_split = true;
  auto plan = ClickInput()
                  .Exchange(spec)
                  .Window(6 * kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  AnalysisReport report = CheckSplitExchange(plan);
  EXPECT_TRUE(HasErrorContaining(report, "split-exchange", "temporal"))
      << report.ToString();
}

TEST(SplitExchange, RejectsAdaptiveSplitOnSingletonExchange) {
  PartitionSpec spec = PartitionSpec::ByKeys({});
  spec.adaptive_split = true;
  auto plan = ClickInput()
                  .Exchange(spec)
                  .Window(kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  AnalysisReport report = CheckSplitExchange(plan);
  EXPECT_TRUE(HasErrorContaining(report, "split-exchange", "no keys"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// "determinism"
// ---------------------------------------------------------------------------

PlanNodePtr UdoOverUnion(bool order_insensitive) {
  Query a = ClickInput();
  Query b = Query::Input("Clicks2", kClickSchema);
  return Query::Union(a, b)
      .Udo(
          kHour, kHour,
          [](temporal::Timestamp, temporal::Timestamp,
             const std::vector<Event>& active) {
            std::vector<Row> out;
            if (!active.empty()) out.push_back(active.front().payload);
            return out;
          },
          kClickSchema, order_insensitive)
      .node();
}

TEST(DeterminismAudit, FlagsUndeclaredUdoOverMerge) {
  AnalysisReport report = CheckDeterminism(UdoOverUnion(false));
  ASSERT_EQ(report.warning_count(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics[0].check, "determinism");
  EXPECT_FALSE(report.HasErrors()) << "audit findings are warnings";
}

TEST(DeterminismAudit, AcceptsDeclaredOrderInsensitiveUdo) {
  EXPECT_EQ(CheckDeterminism(UdoOverUnion(true)).diagnostics.size(), 0u);
}

TEST(DeterminismAudit, ExchangeBoundaryResetsOrderConcern) {
  // A shuffle re-sorts into the canonical order, so a UDO above an exchange
  // above a merge is fine.
  Query a = ClickInput();
  Query b = Query::Input("Clicks2", kClickSchema);
  auto plan = Query::Union(a, b)
                  .Exchange(PartitionSpec::ByKeys({"UserId"}))
                  .Udo(
                      kHour, kHour,
                      [](temporal::Timestamp, temporal::Timestamp,
                         const std::vector<Event>& active) {
                        std::vector<Row> out;
                        if (!active.empty()) out.push_back(active.front().payload);
                        return out;
                      },
                      kClickSchema)
                  .node();
  EXPECT_EQ(CheckDeterminism(plan).diagnostics.size(), 0u);
}

// ---------------------------------------------------------------------------
// "fragment-cut" (seeded corruption 3)
// ---------------------------------------------------------------------------

PlanNodePtr InputLeaf(const std::string& dataset, const Schema& schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = OpKind::kInput;
  n->name = dataset;
  n->input_schema = schema;
  return n;
}

TEST(FragmentCheck, AcceptsCutterOutput) {
  auto plan = bt::BtFeaturePipeline(bt::BtQueryConfig(),
                                    bt::Annotation::kStandard);
  auto frags = MakeFragments(plan.node());
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  AnalysisReport report = CheckFragments(frags.ValueOrDie());
  EXPECT_TRUE(report.ToStatus().ok()) << report.ToString();
}

TEST(FragmentCheck, RejectsCyclicFragmentOrder) {
  Fragment consumer;
  consumer.name = "frag_1";
  consumer.root = InputLeaf("frag_0", kClickSchema);
  consumer.key = PartitionSpec::ByKeys({});
  consumer.inputs = {"frag_0"};
  consumer.input_is_external = {false};
  Fragment producer;
  producer.name = "frag_0";
  producer.root = InputLeaf("Clicks", kClickSchema);
  producer.key = PartitionSpec::ByKeys({});
  producer.inputs = {"Clicks"};
  producer.input_is_external = {true};
  FragmentedPlan plan;
  plan.fragments = {consumer, producer};  // inverted on purpose
  plan.output_dataset = "frag_0";
  AnalysisReport report = CheckFragments(plan);
  ASSERT_TRUE(HasErrorContaining(report, "fragment-cut", "cyclic"))
      << report.ToString();
  EXPECT_NE(report.ForCheck("fragment-cut")[0].subject.find("frag_1"),
            std::string::npos)
      << "diagnostic should name the offending fragment";
}

TEST(FragmentCheck, RejectsLeftoverExchangeInFragmentBody) {
  Fragment frag;
  frag.name = "frag_0";
  frag.root = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"UserId"}))
                  .Where([](const Row&) { return true; })
                  .node();
  frag.key = PartitionSpec::ByKeys({"UserId"});
  frag.inputs = {"Clicks"};
  frag.input_is_external = {true};
  FragmentedPlan plan;
  plan.fragments = {frag};
  plan.output_dataset = "frag_0";
  AnalysisReport report = CheckFragments(plan);
  EXPECT_TRUE(HasErrorContaining(report, "fragment-cut", "exchange-free"))
      << report.ToString();
}

TEST(FragmentCheck, RejectsOverlapBelowFragmentWindow) {
  Fragment frag;
  frag.name = "frag_0";
  frag.root = ClickInput()
                  .Window(6 * kHour)
                  .Aggregate(AggregateSpec::Count("Cnt"))
                  .node();
  frag.key = PartitionSpec::ByTime(12 * kHour, kHour);  // overlap < window
  frag.inputs = {"Clicks"};
  frag.input_is_external = {true};
  FragmentedPlan plan;
  plan.fragments = {frag};
  plan.output_dataset = "frag_0";
  AnalysisReport report = CheckFragments(plan);
  EXPECT_TRUE(HasErrorContaining(report, "fragment-cut", "max window"))
      << report.ToString();
}

TEST(FragmentCheck, RejectsUndeclaredInput) {
  Fragment frag;
  frag.name = "frag_0";
  frag.root = ClickInput().node();
  frag.key = PartitionSpec::ByKeys({});
  frag.inputs = {};  // plan reads "Clicks" but declares nothing
  FragmentedPlan plan;
  plan.fragments = {frag};
  plan.output_dataset = "frag_0";
  AnalysisReport report = CheckFragments(plan);
  EXPECT_TRUE(HasErrorContaining(report, "fragment-cut", "not declared"))
      << report.ToString();
}

TEST(StageCheck, AcceptsCompiledStage) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"AdId"}))
                  .GroupApply({"AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  auto frags = MakeFragments(plan);
  ASSERT_TRUE(frags.ok());
  const Fragment& frag = frags.ValueOrDie().fragments[0];
  auto stage = framework::CompileFragment(
      frag, {temporal::PointRowSchema(kClickSchema)}, 4,
      framework::TimrOptions(), {0, 0}, nullptr);
  ASSERT_TRUE(stage.ok()) << stage.status().ToString();
  AnalysisReport report =
      CheckStage(frags.ValueOrDie(), 0, stage.ValueOrDie());
  EXPECT_TRUE(report.ToStatus().ok()) << report.ToString();
}

TEST(StageCheck, RejectsConsumingExternalSource) {
  auto plan = ClickInput()
                  .Exchange(PartitionSpec::ByKeys({"AdId"}))
                  .GroupApply({"AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  auto frags = MakeFragments(plan);
  ASSERT_TRUE(frags.ok());
  auto stage = framework::CompileFragment(
      frags.ValueOrDie().fragments[0],
      {temporal::PointRowSchema(kClickSchema)}, 4, framework::TimrOptions(),
      {0, 0}, nullptr);
  ASSERT_TRUE(stage.ok());
  mr::MRStage bad = stage.ValueOrDie();
  bad.consumable_inputs = {0};  // "Clicks" is an external source
  AnalysisReport report = CheckStage(frags.ValueOrDie(), 0, bad);
  EXPECT_TRUE(HasErrorContaining(report, "fragment-cut", "external"))
      << report.ToString();
}

TEST(StageCheck, RejectsConsumingDatasetReadLater) {
  // frag_0's output is read by both frag_1 and frag_2; frag_1 consuming it
  // would starve frag_2.
  Fragment base;
  base.name = "frag_0";
  base.root = ClickInput().node();
  base.key = PartitionSpec::ByKeys({});
  base.inputs = {"Clicks"};
  base.input_is_external = {true};
  auto reader = [](const std::string& name) {
    Fragment f;
    f.name = name;
    f.root = InputLeaf("frag_0", kClickSchema);
    f.key = PartitionSpec::ByKeys({});
    f.inputs = {"frag_0"};
    f.input_is_external = {false};
    return f;
  };
  FragmentedPlan plan;
  plan.fragments = {base, reader("frag_1"), reader("frag_2")};
  plan.output_dataset = "frag_2";

  mr::MRStage stage;
  stage.name = "frag_1";
  stage.inputs = {"frag_0"};
  stage.output = "frag_1";
  stage.num_partitions = 1;
  stage.partition_fn = mr::SinglePartition();
  stage.reducer = [](int, const std::vector<std::vector<Row>>&,
                     std::vector<Row>*) { return Status::OK(); };
  stage.consumable_inputs = {0};
  AnalysisReport report = CheckStage(plan, 1, stage);
  EXPECT_TRUE(HasErrorContaining(report, "fragment-cut", "last use"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Runtime conformance (seeded corruption 4) and instrumentation.
// ---------------------------------------------------------------------------

TEST(ConformanceOp, CleanStreamPassesThrough) {
  ConformanceCheckOp check("edge");
  temporal::CollectorSink sink;
  check.AddOutput(&sink);
  check.OnEvent(Event(1, 10, {Value(1)}));
  check.OnCti(5);
  check.OnEvent(Event(5, 8, {Value(2)}));
  check.OnCti(temporal::kMaxTime);
  EXPECT_TRUE(check.violations().empty());
  EXPECT_EQ(sink.TakeEvents().size(), 2u);
}

TEST(ConformanceOp, RecordsEventBeforeCti) {
  ConformanceCheckOp check("frag_1/input:Clicks");
  temporal::CollectorSink sink;
  check.AddOutput(&sink);
  check.OnCti(10);
  check.OnEvent(Event(5, 20, {Value(1)}));
  ASSERT_EQ(check.violations().size(), 1u);
  EXPECT_NE(check.violations()[0].find("precedes the last CTI"),
            std::string::npos);
  EXPECT_NE(check.violations()[0].find("frag_1/input:Clicks"),
            std::string::npos)
      << "violation must carry the operator's provenance label";
  EXPECT_TRUE(sink.TakeEvents().empty()) << "violating events are dropped";
}

TEST(ConformanceOp, RecordsCtiRegression) {
  ConformanceCheckOp check("edge");
  check.OnCti(10);
  check.OnCti(3);
  ASSERT_EQ(check.violations().size(), 1u);
  EXPECT_NE(check.violations()[0].find("CTI regressed from 10 to 3"),
            std::string::npos);
}

TEST(ConformanceOp, RecordsInvertedLifetime) {
  ConformanceCheckOp check("edge");
  check.OnEvent(Event(10, 10, {Value(1)}));
  ASSERT_EQ(check.violations().size(), 1u);
  EXPECT_NE(check.violations()[0].find("empty or inverted"),
            std::string::npos);
}

TEST(Instrumentation, WrapsInputsAndRoot) {
  // Multicast source: one input leaf feeding both join sides must get exactly
  // one checker; plus one checker at the root.
  Query source = ClickInput();
  Query counts = source.GroupApply(
      {"UserId"}, [](Query g) { return g.Window(kHour).Count("Cnt"); });
  auto plan = Query::TemporalJoin(source, counts, {"UserId"}, {"UserId"})
                  .node();
  PlanNodePtr instrumented = InstrumentFragmentPlan("frag_0", plan);
  int checks = 0;
  for (PlanNode* node : temporal::CollectNodes(instrumented)) {
    if (node->kind == OpKind::kConformanceCheck) ++checks;
  }
  EXPECT_EQ(checks, 2);  // one shared input + the root
  ASSERT_EQ(instrumented->kind, OpKind::kConformanceCheck);
  EXPECT_EQ(instrumented->name, "frag_0/output");

  // Instrumentation must not change results or the original plan.
  std::vector<Event> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(Event::Point(i * 100, {Value(i % 5), Value(i % 3)}));
  }
  auto plain = temporal::Executor::Execute(plan, {{"Clicks", events}});
  auto checked =
      temporal::Executor::Execute(instrumented, {{"Clicks", events}});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_TRUE(temporal::SameTemporalRelation(plain.ValueOrDie(),
                                             checked.ValueOrDie()));
  for (PlanNode* node : temporal::CollectNodes(plan)) {
    EXPECT_NE(node->kind, OpKind::kConformanceCheck);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: Timr::RunPlan with validate_streams.
// ---------------------------------------------------------------------------

std::vector<Event> SomeClicks() {
  std::vector<Event> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(Event::Point(i * 60, {Value(i % 7), Value(i % 4)}));
  }
  return events;
}

PlanNodePtr CountPerAd() {
  return ClickInput()
      .Exchange(PartitionSpec::ByKeys({"AdId"}))
      .GroupApply({"AdId"},
                  [](Query g) { return g.Window(kHour).Count("Cnt"); })
      .node();
}

TEST(RunPlanValidation, ValidatedRunMatchesUnvalidated) {
  mr::LocalCluster cluster(4, 2);
  framework::TimrOptions with;
  with.validate_streams = true;
  framework::TimrOptions without;
  without.validate_streams = false;
  auto a = framework::RunPlanOnEvents(&cluster, CountPerAd(),
                                      {{"Clicks", {kClickSchema, SomeClicks()}}},
                                      with);
  auto b = framework::RunPlanOnEvents(&cluster, CountPerAd(),
                                      {{"Clicks", {kClickSchema, SomeClicks()}}},
                                      without);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(temporal::SameTemporalRelation(a.ValueOrDie().output,
                                             b.ValueOrDie().output));
}

TEST(RunPlanValidation, RejectsCorruptExchangeKeyBeforeRunning) {
  auto bad = ClickInput()
                 .Exchange(PartitionSpec::ByKeys({"AdId"}))
                 .GroupApply({"UserId"},
                             [](Query g) { return g.Window(kHour).Count(); })
                 .node();
  mr::LocalCluster cluster(4, 2);
  auto res = framework::RunPlanOnEvents(
      &cluster, bad, {{"Clicks", {kClickSchema, SomeClicks()}}});
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("exchange-placement"),
            std::string::npos)
      << res.status().ToString();
  // With validation off the bad plan runs (and silently splits groups) —
  // exactly the failure mode the static pass exists to prevent.
  framework::TimrOptions off;
  off.validate_streams = false;
  auto unchecked = framework::RunPlanOnEvents(
      &cluster, bad, {{"Clicks", {kClickSchema, SomeClicks()}}}, off);
  EXPECT_TRUE(unchecked.ok()) << unchecked.status().ToString();
}

// Corrupted intermediate data (an interval row whose REnd <= Time) must fail
// the consuming stage, not produce wrong output. The row pump
// (EventsFromRows) rejects it before the engine even starts — the
// ConformanceCheck operators behind it cover whatever the conversion layer
// cannot see (CTI discipline, operator output order).
TEST(RunPlanValidation, RejectsCorruptedRowsAtFragmentInput) {
  Schema row_schema = temporal::IntervalRowSchema(kClickSchema);
  std::vector<Row> rows = {
      {Value(100), Value(50), Value(1), Value(2)},  // REnd 50 < Time 100
  };
  std::map<std::string, mr::Dataset> store;
  store["Clicks"] =
      mr::Dataset::FromRows(std::move(row_schema), std::move(rows));
  auto plan = ClickInput()
                  .GroupApply({"AdId"},
                              [](Query g) { return g.Window(kHour).Count(); })
                  .node();
  mr::LocalCluster cluster(2, 2);
  auto res = framework::RunPlan(&cluster, plan, &store);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().ToString().find("empty lifetime"), std::string::npos)
      << res.status().ToString();
}

// The runtime half of validate_streams, end to end through the executor: a
// stream that violates CTI discipline inside an instrumented plan surfaces in
// Executor::ConformanceViolations with the checked edge's label.
TEST(Instrumentation, ExecutorReportsCtiViolationWithProvenance) {
  auto plan = ClickInput()
                  .Where([](const Row&) { return true; })
                  .node();
  PlanNodePtr instrumented = InstrumentFragmentPlan("frag_0", plan);
  auto exec = temporal::Executor::Create(instrumented);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_TRUE(exec.ValueOrDie()->PushCti("Clicks", 100).ok());
  // LE 5 < the CTI 100 just promised: a violation the InputNode itself does
  // not police (it only checks per-source LE order).
  ASSERT_TRUE(exec.ValueOrDie()
                  ->PushEvent("Clicks", Event(5, 50, {Value(1), Value(2)}))
                  .ok());
  exec.ValueOrDie()->Finish();
  const std::vector<std::string> violations =
      exec.ValueOrDie()->ConformanceViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("frag_0/input:Clicks"), std::string::npos)
      << violations[0];
  EXPECT_NE(violations[0].find("precedes the last CTI"), std::string::npos)
      << violations[0];
}

// Every plan the repository ships must lint clean (warnings allowed).
TEST(Acceptance, AllBtPlansPassAnalysis) {
  for (auto mode : {bt::Annotation::kNone, bt::Annotation::kStandard,
                    bt::Annotation::kNaive}) {
    auto plan = bt::BtFeaturePipeline(bt::BtQueryConfig(), mode).node();
    AnalysisReport report = AnalyzePlan(plan);
    EXPECT_TRUE(report.ToStatus().ok())
        << "mode " << static_cast<int>(mode) << ": " << report.ToString();
  }
}

}  // namespace
}  // namespace timr::analysis
