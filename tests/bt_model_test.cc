// Model building and scoring tests (paper §IV-B.4): logistic regression,
// the UDO-based model query, the TemporalJoin-based scoring query, and the
// reduction schemes.

#include <gtest/gtest.h>

#include <cmath>

#include "bt/model.h"
#include "bt/queries.h"
#include "bt/reduction.h"
#include "common/rng.h"
#include "temporal/executor.h"

namespace timr::bt {
namespace {

using temporal::Event;
using temporal::Executor;
using temporal::Query;

// ---------- Logistic regression ----------

std::vector<SparseExample> SeparableData(int n, uint64_t seed) {
  // Feature 1 => click, feature 2 => no click.
  Rng rng(seed);
  std::vector<SparseExample> data;
  for (int i = 0; i < n; ++i) {
    SparseExample e;
    e.clicked = rng.Bernoulli(0.5);
    e.features.emplace_back(e.clicked ? 1 : 2, 1.0);
    data.push_back(std::move(e));
  }
  return data;
}

TEST(LogisticRegression, SeparatesPlantedSignal) {
  auto data = SeparableData(400, 1);
  LrOptions opts;
  opts.epochs = 200;
  LrModel model = TrainLogisticRegression(data, opts);
  EXPECT_GT(model.weights[1], model.weights[2]);
  EXPECT_GT(model.Predict({{1, 1.0}}), 0.8);
  EXPECT_LT(model.Predict({{2, 1.0}}), 0.2);
}

TEST(LogisticRegression, DeterministicInSeed) {
  auto data = SeparableData(200, 2);
  LrOptions opts;
  LrModel a = TrainLogisticRegression(data, opts);
  LrModel b = TrainLogisticRegression(data, opts);
  EXPECT_EQ(a.bias, b.bias);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(LogisticRegression, EmptyInputYieldsNeutralModel) {
  LrModel model = TrainLogisticRegression({}, LrOptions());
  EXPECT_EQ(model.bias, 0.0);
  EXPECT_DOUBLE_EQ(model.Predict({}), 0.5);
}

TEST(LogisticRegression, BalancingCountersSkew) {
  // 2% positive rate; with balancing the intercept must not drown positives.
  Rng rng(3);
  std::vector<SparseExample> data;
  for (int i = 0; i < 3000; ++i) {
    SparseExample e;
    e.clicked = rng.Bernoulli(0.02);
    e.features.emplace_back(e.clicked ? 1 : 2, 1.0);
    data.push_back(std::move(e));
  }
  LrOptions opts;
  opts.epochs = 150;
  LrModel model = TrainLogisticRegression(data, opts);
  EXPECT_GT(model.Predict({{1, 1.0}}), 0.5);
}

// ---------- Model query + scoring query ----------

std::vector<Event> TrainRows(
    std::vector<std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, int64_t>>
        rows) {
  // (t, label, user, ad, keyword, count)
  std::vector<Event> events;
  for (auto& [t, label, user, ad, kw, cnt] : rows) {
    events.push_back(Event::Point(
        t, {Value(label), Value(user), Value(ad), Value(kw), Value(cnt)}));
  }
  return events;
}

TEST(ModelQuery, ProducesPerAdWeightEvents) {
  Query train = Query::Input("Train", TrainDataSchema());
  Query model = ModelBuildQuery(train, /*window=*/1000, /*hop=*/1000);
  // Ad 1: keyword 5 clicks, keyword 6 doesn't.
  auto out = Executor::Execute(
      model.node(),
      {{"Train", TrainRows({{10, 1, 100, 1, 5, 2},
                            {20, 0, 101, 1, 6, 1},
                            {30, 1, 102, 1, 5, 1},
                            {40, 0, 103, 1, 6, 3}})}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  double w5 = 0, w6 = 0;
  bool has_bias = false;
  for (const Event& e : out.ValueOrDie()) {
    ASSERT_EQ(e.payload[0].AsInt64(), 1);  // AdId
    const int64_t feature = e.payload[1].AsInt64();
    if (feature == 5) w5 = e.payload[2].AsDouble();
    if (feature == 6) w6 = e.payload[2].AsDouble();
    if (feature == -1) has_bias = true;
  }
  EXPECT_TRUE(has_bias);
  EXPECT_GT(w5, w6);
}

TEST(ScoringQuery, MatchesDirectPrediction) {
  // Hand-built model for ad 1: bias -1, w(kw5) = 2. Valid on [0, 1000).
  std::vector<Event> model_events = {
      Event(0, 1000, {Value(int64_t{1}), Value(int64_t{-1}), Value(-1.0)}),
      Event(0, 1000, {Value(int64_t{1}), Value(int64_t{5}), Value(2.0)})};
  // One test example at t=100 for user 7, ad 1, with kw5 count 3.
  auto examples = TrainRows({{100, 0, 7, 1, 5, 3}});

  Query ex = Query::Input("Ex", TrainDataSchema());
  Query model = Query::Input("Model", ModelSchema());
  Query scored = ScoringQuery(ex, model);
  auto out = Executor::Execute(scored.node(),
                               {{"Ex", examples}, {"Model", model_events}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  const double expected = 1.0 / (1.0 + std::exp(-(-1.0 + 2.0 * 3)));
  EXPECT_NEAR(out.ValueOrDie()[0].payload[3].AsDouble(), expected, 1e-9);
}

TEST(ScoringQuery, SumsMultipleFeatureTerms) {
  std::vector<Event> model_events = {
      Event(0, 1000, {Value(int64_t{1}), Value(int64_t{-1}), Value(0.0)}),
      Event(0, 1000, {Value(int64_t{1}), Value(int64_t{5}), Value(1.0)}),
      Event(0, 1000, {Value(int64_t{1}), Value(int64_t{6}), Value(-1.0)})};
  // Example with both keywords: dot = 1*2 + (-1)*2 = 0 -> sigmoid = 0.5.
  auto examples = TrainRows({{100, 1, 7, 1, 5, 2}, {100, 1, 7, 1, 6, 2}});
  Query scored = ScoringQuery(Query::Input("Ex", TrainDataSchema()),
                              Query::Input("Model", ModelSchema()));
  auto out = Executor::Execute(scored.node(),
                               {{"Ex", examples}, {"Model", model_events}});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.ValueOrDie().size(), 1u);
  EXPECT_NEAR(out.ValueOrDie()[0].payload[3].AsDouble(), 0.5, 1e-9);
}

// ---------- Reduction schemes ----------

std::vector<FeatureScore> FakeScores() {
  // ad 1: kw 10 strongly positive, kw 11 strongly negative, kw 12 popular
  // but uncorrelated, kw 13 unsupported.
  std::vector<FeatureScore> scores;
  auto add = [&](int64_t kw, int64_t ck, int64_t ik, double z) {
    FeatureScore s;
    s.ad = 1;
    s.keyword = kw;
    s.clicks_with = ck;
    s.examples_with = ik;
    s.clicks_total = 500;
    s.examples_total = 10000;
    s.z = z;
    scores.push_back(s);
  };
  add(10, 60, 300, 6.0);
  add(11, 2, 400, -3.0);
  add(12, 55, 2000, 0.4);
  add(13, 1, 4, 2.5);  // below the example-support floor
  return scores;
}

TEST(Reduction, KeZFiltersByThresholdAndSupport) {
  auto sel = SelectKeZ(FakeScores(), 1.96);
  ASSERT_TRUE(sel.count(1));
  EXPECT_TRUE(sel[1].count(10));
  EXPECT_TRUE(sel[1].count(11));   // negative keywords retained by |z|
  EXPECT_FALSE(sel[1].count(12));  // below threshold
  EXPECT_FALSE(sel[1].count(13));  // no support
}

TEST(Reduction, SignedSelectionSplitsByDirection) {
  auto pos = SelectKeZSigned(FakeScores(), 1.96, true);
  auto neg = SelectKeZSigned(FakeScores(), 1.96, false);
  EXPECT_TRUE(pos[1].count(10));
  EXPECT_FALSE(pos[1].count(11));
  EXPECT_TRUE(neg[1].count(11));
  EXPECT_FALSE(neg[1].count(10));
}

TEST(Reduction, KePopRanksByRawPopularity) {
  auto sel = SelectKePop(FakeScores(), 1);
  ASSERT_TRUE(sel.count(1));
  EXPECT_TRUE(sel[1].count(12));  // most examples_with, despite z = 0.4
}

TEST(Reduction, FExIsDeterministicAndBounded) {
  auto a = FExCategories(12345, 2000);
  auto b = FExCategories(12345, 2000);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 1u);
  EXPECT_LE(a.size(), 3u);
  for (int64_t c : a) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2000);
  }
}

TEST(Reduction, SchemeReduceMapsFeatures) {
  auto scores = FakeScores();
  auto kez = ReductionScheme::KeZ("z", scores, 1.96);
  std::vector<std::pair<int64_t, double>> features = {
      {10, 2.0}, {12, 1.0}, {99, 5.0}};
  auto reduced = kez.Reduce(1, features);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced[0].first, 10);

  auto fex = ReductionScheme::FEx("f");
  auto fex_reduced = fex.Reduce(1, features);
  EXPECT_GE(fex_reduced.size(), features.size());  // categories inflate

  auto identity = ReductionScheme::Identity("id");
  EXPECT_EQ(identity.Reduce(1, features), features);
}

TEST(Reduction, TwoProportionZSignsAndGates) {
  EXPECT_GT(TwoProportionZ(50, 100, 100, 2000), 2.0);   // CTR 50% vs ~2.6%
  EXPECT_LT(TwoProportionZ(0, 200, 100, 2000), -1.0);   // zero clicks-with
  EXPECT_EQ(TwoProportionZ(1, 2, 100, 2000), 0.0);      // too few examples
}

}  // namespace
}  // namespace timr::bt
