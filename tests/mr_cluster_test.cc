// Map-reduce substrate tests: partitioning, canonical shuffle order,
// multi-input stages, fault injection and retry policy, speculative
// execution, poison-row quarantine, checkpoint/resume, stats, and error
// paths. The Chaos suite at the bottom drives the full BT pipeline through
// randomized-but-replayable fault schedules and demands bit-identical output
// (paper §III-C.1).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bt_test_util.h"
#include "mr/checkpoint.h"
#include "mr/cluster.h"
#include "mr/fault.h"

namespace timr::mr {
namespace {

Schema RowSchema() {
  return Schema::Of({{"Time", ValueType::kInt64},
                     {"Key", ValueType::kInt64},
                     {"Val", ValueType::kInt64}});
}

Dataset MakeData(std::vector<std::tuple<int64_t, int64_t, int64_t>> rows) {
  std::vector<Row> out;
  for (auto& [t, k, v] : rows) out.push_back({Value(t), Value(k), Value(v)});
  return Dataset::FromRows(RowSchema(), std::move(out));
}

MRStage IdentityStage(std::string in, std::string out, int key_col) {
  MRStage stage;
  stage.name = "identity";
  stage.inputs = {std::move(in)};
  stage.output = std::move(out);
  stage.output_schema = RowSchema();
  stage.partition_fn = HashPartitioner({{key_col}});
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    *output = inputs[0];
    return Status::OK();
  };
  return stage;
}

TEST(Cluster, HashPartitioningGroupsKeysTogether) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 7, 0}, {2, 7, 1}, {3, 9, 2}, {4, 7, 3}});

  MRStage stage = IdentityStage("in", "out", 1);
  stage.reducer = [](int p, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    // All rows of one key must land in the same partition: report
    // (partition, key) pairs.
    for (const Row& r : inputs[0]) {
      output->push_back({Value(int64_t{p}), r[1], Value(int64_t{0})});
    }
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  std::map<int64_t, std::set<int64_t>> partitions_of_key;
  for (const Row& r : store.at("out").Gather()) {
    partitions_of_key[r[1].AsInt64()].insert(r[0].AsInt64());
  }
  EXPECT_EQ(partitions_of_key[7].size(), 1u);
  EXPECT_EQ(partitions_of_key[9].size(), 1u);
  EXPECT_EQ(stats.rows_in, 4u);
  EXPECT_EQ(stats.rows_out, 4u);
}

TEST(Cluster, ReducerInputSortedByTimeCanonically) {
  LocalCluster cluster(1, 1);
  std::map<std::string, Dataset> store;
  // Deliberately unsorted, with a timestamp tie broken by row content.
  store["in"] = MakeData({{5, 1, 9}, {2, 1, 3}, {5, 1, 1}, {1, 1, 0}});

  MRStage stage = IdentityStage("in", "out", 1);
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  auto rows = store.at("out").Gather();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[1][0].AsInt64(), 2);
  EXPECT_EQ(rows[2][0].AsInt64(), 5);
  EXPECT_EQ(rows[2][2].AsInt64(), 1);  // tie: smaller payload first
  EXPECT_EQ(rows[3][2].AsInt64(), 9);
}

TEST(Cluster, MultiInputStageDeliversPerInputRows) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["a"] = MakeData({{1, 1, 10}});
  store["b"] = MakeData({{2, 1, 20}, {3, 1, 30}});

  MRStage stage;
  stage.name = "multi";
  stage.inputs = {"a", "b"};
  stage.output = "out";
  stage.output_schema = RowSchema();
  stage.partition_fn = HashPartitioner({{1}, {1}});
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    output->push_back({Value(int64_t{0}),
                       Value(static_cast<int64_t>(inputs[0].size())),
                       Value(static_cast<int64_t>(inputs[1].size()))});
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  int64_t a_total = 0, b_total = 0;
  for (const Row& r : store.at("out").Gather()) {
    a_total += r[1].AsInt64();
    b_total += r[2].AsInt64();
  }
  EXPECT_EQ(a_total, 1);
  EXPECT_EQ(b_total, 2);
}

TEST(Cluster, ReplicatingPartitionerDuplicatesRows) {
  LocalCluster cluster(3, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}});

  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row&, int parts, std::vector<int>* t) {
    for (int i = 0; i < parts; ++i) t->push_back(i);  // broadcast
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_EQ(stats.rows_shuffled, 6u);
  EXPECT_EQ(store.at("out").TotalRows(), 6u);
}

TEST(Cluster, FailureInjectionRetriesAndMatches) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 1}, {3, 3, 2}, {4, 4, 3}});

  LocalCluster cluster(4, 2);
  MRStage stage = IdentityStage("in", "out", 1);
  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  FailureInjector injector;
  injector.FailOnce("identity", 0);
  injector.FailOnce("identity", 3);
  cluster.set_failure_injector(&injector);
  stage.output = "out2";
  StageStats retry_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &retry_stats).ok());
  EXPECT_TRUE(injector.empty());
  EXPECT_EQ(retry_stats.retried_tasks, 2);
  EXPECT_EQ(retry_stats.speculative_tasks, 0);
  EXPECT_EQ(retry_stats.task_attempts, retry_stats.partitions + 2);
  EXPECT_EQ(store.at("out2").Gather(), clean);
}

TEST(Cluster, MissingInputDatasetIsKeyError) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  StageStats stats;
  Status st = cluster.RunStage(IdentityStage("nope", "out", 1), &store, &stats);
  EXPECT_EQ(st.code(), StatusCode::kKeyError);
}

TEST(Cluster, OutOfRangePartitionTargetIsError) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row&, int, std::vector<int>* t) {
    t->push_back(99);
  };
  StageStats stats;
  EXPECT_FALSE(cluster.RunStage(stage, &store, &stats).ok());
}

TEST(Cluster, ReducerErrorExhaustsRetriesIntoTaskFailed) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.reducer = [](int, const std::vector<std::vector<Row>>&,
                     std::vector<Row>*) {
    return Status::ExecutionError("boom");
  };
  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  // A persistent reducer error burns the whole retry budget, then fails the
  // job with a structured diagnostic naming stage, partition, and attempts.
  EXPECT_EQ(st.code(), StatusCode::kTaskFailed);
  EXPECT_NE(st.message().find("stage identity partition 0"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("after 3 attempts"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("boom"), std::string::npos) << st.ToString();
  // No partial output reaches the store.
  EXPECT_EQ(store.count("out"), 0u);
}

TEST(Cluster, JobRunsStagesInOrder) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 1}, {2, 2, 2}});
  MRStage s1 = IdentityStage("in", "mid", 1);
  s1.name = "s1";
  MRStage s2 = IdentityStage("mid", "out", 1);
  s2.name = "s2";
  auto stats = cluster.RunJob({s1, s2}, &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().stages.size(), 2u);
  EXPECT_EQ(store.at("out").TotalRows(), 2u);
  EXPECT_GE(stats.ValueOrDie().TotalSimulatedSeconds(), 0.0);
}

// Synthetic data big enough that the map phase splits into several morsels.
Dataset BigData(int n) {
  std::vector<Row> rows;
  uint64_t x = 88172645463325252ull;  // xorshift64: deterministic "random" keys
  for (int i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({Value(static_cast<int64_t>(x % 1000)),
                    Value(static_cast<int64_t>(x % 97)),
                    Value(static_cast<int64_t>(i))});
  }
  return Dataset::FromRows(RowSchema(), std::move(rows));
}

TEST(Cluster, ShuffleIsDeterministicAcrossThreadCounts) {
  // The same stage must produce bit-identical datasets and stats for any
  // host thread count — the repeatability guarantee the reducers rely on.
  auto run = [](int num_threads) {
    LocalCluster cluster(8, num_threads);
    std::map<std::string, Dataset> store;
    store["in"] = BigData(20000);
    MRStage stage = IdentityStage("in", "out", 1);
    // Replicate some rows so the multi-target path is exercised too.
    stage.partition_fn = [](int, const Row& row, int parts,
                            std::vector<int>* t) {
      const int64_t k = row[1].AsInt64();
      t->push_back(static_cast<int>(k % parts));
      if (k % 5 == 0) t->push_back(static_cast<int>((k + 1) % parts));
    };
    StageStats stats;
    Status st = cluster.RunStage(stage, &store, &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return std::make_pair(std::move(store), stats);
  };

  auto [store1, stats1] = run(1);
  for (int threads : {2, 5, 0 /* hardware */}) {
    auto [storeN, statsN] = run(threads);
    EXPECT_EQ(statsN.rows_in, stats1.rows_in);
    EXPECT_EQ(statsN.rows_shuffled, stats1.rows_shuffled);
    EXPECT_EQ(statsN.rows_out, stats1.rows_out);
    const Dataset& a = store1.at("out");
    const Dataset& b = storeN.at("out");
    ASSERT_EQ(a.num_partitions(), b.num_partitions());
    for (size_t p = 0; p < a.num_partitions(); ++p) {
      EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p
                                                << ", threads=" << threads;
    }
  }
}

TEST(Cluster, PerPhaseStatsArePopulated) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(5000);
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(IdentityStage("in", "out", 1), &store, &stats)
                  .ok());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.map_shuffle_seconds, 0.0);
  EXPECT_GT(stats.sort_seconds, 0.0);
  EXPECT_GT(stats.reduce_seconds, 0.0);
  // Phases are disjoint sub-intervals of the stage's wall time.
  EXPECT_LE(stats.map_shuffle_seconds + stats.sort_seconds +
                stats.reduce_seconds,
            stats.wall_seconds + 1e-6);
  JobStats job;
  job.stages.push_back(stats);
  EXPECT_NE(job.ToString().find("map="), std::string::npos);
  EXPECT_NE(job.ToString().find("sort="), std::string::npos);
  EXPECT_NE(job.ToString().find("reduce="), std::string::npos);
}

TEST(Cluster, ConsumableInputIsMovedAndReleased) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(4000);
  const auto expected = [&] {
    std::map<std::string, Dataset> copy_store;
    copy_store["in"] = store.at("in");
    LocalCluster c2(4, 1);
    StageStats s;
    MRStage stage = IdentityStage("in", "out", 1);
    EXPECT_TRUE(c2.RunStage(stage, &copy_store, &s).ok());
    return copy_store.at("out").Gather();
  }();

  MRStage stage = IdentityStage("in", "out", 1);
  stage.consumable_inputs = {0};
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  // Output is identical to the copying path...
  EXPECT_EQ(store.at("out").Gather(), expected);
  // ...and the consumed input's partitions were released.
  EXPECT_EQ(store.at("in").TotalRows(), 0u);
  EXPECT_EQ(store.at("in").num_partitions(), 1u);  // shape & schema survive
}

TEST(Cluster, ConsumableIgnoredForDuplicateInputName) {
  // A self-join reads the same dataset through two input indices: consuming
  // either would corrupt the other, so the hint must be ignored.
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 10}, {2, 2, 20}});

  MRStage stage;
  stage.name = "selfjoin";
  stage.inputs = {"in", "in"};
  stage.output = "out";
  stage.output_schema = RowSchema();
  stage.num_partitions = 1;
  stage.partition_fn = SinglePartition();
  stage.consumable_inputs = {0, 1};
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    output->push_back({Value(int64_t{0}),
                       Value(static_cast<int64_t>(inputs[0].size())),
                       Value(static_cast<int64_t>(inputs[1].size()))});
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  const Row& r = store.at("out").partition(0)[0];
  EXPECT_EQ(r[1].AsInt64(), 2);  // both sides saw both rows
  EXPECT_EQ(r[2].AsInt64(), 2);
  EXPECT_EQ(store.at("in").TotalRows(), 2u);  // source intact
}

TEST(Cluster, OutOfRangeTargetErrorsUnderParallelMap) {
  LocalCluster cluster(2, 4);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(10000);
  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row& row, int, std::vector<int>* t) {
    t->push_back(row[2].AsInt64() == 7777 ? 99 : 0);
  };
  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.ToString().find("out of range"), std::string::npos);
}

TEST(Cluster, SinglePartitionFunnelsEverything) {
  LocalCluster cluster(8, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}, {3, 3, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.num_partitions = 1;
  stage.partition_fn = SinglePartition();
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_EQ(stats.partitions, 1);
  EXPECT_EQ(store.at("out").partition(0).size(), 3u);
}

// ---------------------------------------------------------------------------
// Fault handling: exception containment, retry policy, scripted fault kinds.
// ---------------------------------------------------------------------------

TEST(Fault, ThrowingReducerBecomesStatusNotAbort) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.reducer = [](int, const std::vector<std::vector<Row>>&,
                     std::vector<Row>*) -> Status {
    throw std::runtime_error("kaboom");
  };
  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  // The exception is converted to a Status at the task boundary; after the
  // retry budget it surfaces as kTaskFailed with the what() preserved.
  EXPECT_EQ(st.code(), StatusCode::kTaskFailed);
  EXPECT_NE(st.message().find("reducer threw: kaboom"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(store.count("out"), 0u);
  EXPECT_GE(stats.retried_tasks, 2);  // at least two re-runs on partition 0
}

TEST(Fault, TransientErrorsWithinBudgetRecover) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}, {3, 3, 0}});

  MRStage stage = IdentityStage("in", "out", 1);
  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  // Two transient failures on one task: attempts 0 and 1 fail, attempt 2 (the
  // last allowed) succeeds.
  ScriptedFaultInjector injector;
  injector.InjectAt("identity", 0, 0, {FaultKind::kTransientError, 0});
  injector.InjectAt("identity", 0, 1, {FaultKind::kTransientError, 0});
  cluster.set_fault_injector(&injector);
  stage.output = "out2";
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_TRUE(injector.empty());
  EXPECT_EQ(stats.retried_tasks, 2);
  EXPECT_EQ(store.at("out2").Gather(), clean);
}

TEST(Fault, ExhaustedBudgetFailsWithStructuredDiagnostic) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}});

  ScriptedFaultInjector injector;
  for (int attempt = 0; attempt < 3; ++attempt) {
    injector.InjectAt("identity", 0, attempt, {FaultKind::kCrash, 0});
  }
  cluster.set_fault_injector(&injector);
  StageStats stats;
  Status st = cluster.RunStage(IdentityStage("in", "out", 1), &store, &stats);
  EXPECT_EQ(st.code(), StatusCode::kTaskFailed);
  EXPECT_NE(st.message().find("stage identity partition 0"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("after 3 attempts"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(store.count("out"), 0u);  // no partial output in the store
}

TEST(Fault, EveryFaultKindIsAbsorbedBitIdentically) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 1}, {3, 3, 2}, {4, 4, 3}});
  LocalCluster cluster(4, 2);
  MRStage stage = IdentityStage("in", "out", 1);
  // Route by Val so partition 0 is guaranteed a row: kCorruptInput needs a
  // non-empty bucket to corrupt.
  stage.partition_fn = [](int, const Row& row, int parts,
                          std::vector<int>* t) {
    t->push_back(static_cast<int>(row[2].AsInt64()) % parts);
  };
  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  struct Case {
    FaultKind kind;
    bool costs_retry;  // straggler delays but does not fail the attempt
  };
  const Case cases[] = {
      {FaultKind::kCrash, true},         {FaultKind::kTransientError, true},
      {FaultKind::kPartialOutput, true}, {FaultKind::kDiscardOutput, true},
      {FaultKind::kStraggler, false},    {FaultKind::kCorruptInput, true},
  };
  int out_index = 0;
  for (const Case& c : cases) {
    ScriptedFaultInjector injector;
    injector.InjectAt("identity", 0, 0, {c.kind, 0.01});
    cluster.set_fault_injector(&injector);
    stage.output = "out_" + std::to_string(out_index++);
    StageStats stats;
    Status st = cluster.RunStage(stage, &store, &stats);
    ASSERT_TRUE(st.ok()) << FaultKindName(c.kind) << ": " << st.ToString();
    EXPECT_TRUE(injector.empty()) << FaultKindName(c.kind);
    EXPECT_EQ(stats.retried_tasks, c.costs_retry ? 1 : 0)
        << FaultKindName(c.kind);
    EXPECT_EQ(store.at(stage.output).Gather(), clean) << FaultKindName(c.kind);
  }
  cluster.set_fault_injector(nullptr);
}

// ---------------------------------------------------------------------------
// Speculative execution.
// ---------------------------------------------------------------------------

TEST(Fault, SpeculativeBackupBeatsStraggler) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 0, 0}, {2, 1, 1}, {3, 2, 2}, {4, 3, 3}});
  LocalCluster cluster(4, /*num_threads=*/3);
  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row& row, int parts,
                          std::vector<int>* t) {
    t->push_back(static_cast<int>(row[1].AsInt64()) % parts);
  };

  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  // Partition 0's first attempt stalls for ~1.5s; the other partitions finish
  // in microseconds, so the monitor's median-based threshold trips quickly
  // and launches a backup, which wins. The stalled primary eventually
  // completes with identical output (verified byte-for-byte).
  ScriptedFaultInjector injector;
  injector.InjectAt("identity", 0, 0, {FaultKind::kStraggler, 1.5});
  cluster.set_fault_injector(&injector);
  FaultToleranceOptions ft;
  ft.speculative_execution = true;
  ft.min_straggler_seconds = 0.05;
  ft.straggler_factor = 4.0;
  cluster.set_fault_tolerance(ft);

  stage.output = "out2";
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_GE(stats.speculative_tasks, 1);
  EXPECT_GE(stats.speculative_won, 1);
  EXPECT_EQ(stats.retried_tasks, 0);
  EXPECT_EQ(store.at("out2").Gather(), clean);
}

TEST(Fault, SpeculativeOutputMismatchIsDeterminismViolation) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 0, 0}, {2, 1, 1}});
  LocalCluster cluster(2, /*num_threads=*/3);

  MRStage stage;
  stage.name = "nondet";
  stage.inputs = {"in"};
  stage.output = "out";
  stage.output_schema = RowSchema();
  stage.num_partitions = 2;
  stage.partition_fn = [](int, const Row& row, int parts,
                          std::vector<int>* t) {
    t->push_back(static_cast<int>(row[1].AsInt64()) % parts);
  };
  // A deliberately nondeterministic reducer: each invocation emits a distinct
  // value, so primary and backup cannot agree.
  auto counter = std::make_shared<std::atomic<int64_t>>(0);
  stage.reducer = [counter](int p, const std::vector<std::vector<Row>>&,
                            std::vector<Row>* output) {
    output->push_back(
        {Value(int64_t{0}), Value(int64_t{p}), Value(counter->fetch_add(1))});
    return Status::OK();
  };

  ScriptedFaultInjector injector;
  injector.InjectAt("nondet", 0, 0, {FaultKind::kStraggler, 1.0});
  cluster.set_fault_injector(&injector);
  FaultToleranceOptions ft;
  ft.speculative_execution = true;
  ft.min_straggler_seconds = 0.05;
  cluster.set_fault_tolerance(ft);

  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("determinism violation"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(store.count("out"), 0u);
}

// ---------------------------------------------------------------------------
// Poison-row quarantine.
// ---------------------------------------------------------------------------

TEST(Fault, QuarantineDivertsPoisonRowsBelowThreshold) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 1}, {3, 3, 2}, {4, 4, 3}});
  LocalCluster cluster(2, 2);
  MRStage stage = IdentityStage("in", "out", 1);
  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  // Re-run with two poison rows injected: a mistyped Time cell and a
  // short row. Both would crash the shuffle sort / reducer if let through.
  std::map<std::string, Dataset> dirty_store;
  dirty_store["in"] = store.at("in");
  dirty_store["in"].partition(0).push_back(
      {Value("not-a-time"), Value(int64_t{9}), Value(int64_t{9})});
  dirty_store["in"].partition(0).push_back({Value(int64_t{5})});

  FaultToleranceOptions ft;
  ft.quarantine_inputs = true;
  ft.max_input_error_rate = 0.5;
  cluster.set_fault_tolerance(ft);
  stage.output = "out2";
  StageStats stats;
  Status st = cluster.RunStage(stage, &dirty_store, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.quarantined_rows, 2u);
  EXPECT_EQ(stats.rows_in, 6u);
  // Clean rows flow through untouched...
  EXPECT_EQ(dirty_store.at("out2").Gather(), clean);
  // ...and the poison rows land in <stage>.quarantine as
  // [input_index, original cells...].
  const Dataset& q = dirty_store.at("identity.quarantine");
  auto qrows = q.Gather();
  ASSERT_EQ(qrows.size(), 2u);
  EXPECT_EQ(qrows[0][0].AsInt64(), 0);  // input index
  EXPECT_EQ(qrows[0][1].AsString(), "not-a-time");
  EXPECT_EQ(qrows[1][1].AsInt64(), 5);
}

TEST(Fault, QuarantineAboveThresholdFailsWithDataError) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 1}});
  store["in"].partition(0).push_back({Value("bad"), Value(1), Value(1)});
  store["in"].partition(0).push_back({Value("worse"), Value(2), Value(2)});

  LocalCluster cluster(2, 2);
  FaultToleranceOptions ft;
  ft.quarantine_inputs = true;
  ft.max_input_error_rate = 0.25;  // 2 of 4 rows bad: 50% > 25%
  cluster.set_fault_tolerance(ft);
  StageStats stats;
  Status st = cluster.RunStage(IdentityStage("in", "out", 1), &store, &stats);
  EXPECT_EQ(st.code(), StatusCode::kDataError);
  EXPECT_NE(st.message().find("failed schema validation"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("max_input_error_rate"), std::string::npos)
      << st.ToString();
  EXPECT_EQ(store.count("out"), 0u);
}

TEST(Fault, MalformedRowWithoutQuarantineIsStatusNotCrash) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}});
  store["in"].partition(0).push_back({Value("bad"), Value(1), Value(1)});
  LocalCluster cluster(2, 2);
  StageStats stats;
  Status st = cluster.RunStage(IdentityStage("in", "out", 1), &store, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.message().find("shuffle sort threw"), std::string::npos)
      << st.ToString();
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.
// ---------------------------------------------------------------------------

std::vector<MRStage> ThreeStageJob() {
  MRStage s1 = IdentityStage("in", "m1", 1);
  s1.name = "s1";
  MRStage s2 = IdentityStage("m1", "m2", 1);
  s2.name = "s2";
  s2.consumable_inputs = {0};  // m1 is released after s2's map phase
  MRStage s3 = IdentityStage("m2", "out", 1);
  s3.name = "s3";
  return {s1, s2, s3};
}

void ExpectStoreEquals(const std::map<std::string, Dataset>& a,
                       const std::map<std::string, Dataset>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, da] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << name;
    EXPECT_EQ(da.schema(), it->second.schema()) << name;
    ASSERT_EQ(da.num_partitions(), it->second.num_partitions()) << name;
    for (size_t p = 0; p < da.num_partitions(); ++p) {
      EXPECT_EQ(da.partition(p), it->second.partition(p))
          << name << " partition " << p;
    }
  }
}

TEST(Checkpoint, KillAndResumeReproducesStoreBitIdentically) {
  const Dataset input = BigData(3000);
  const auto stages = ThreeStageJob();

  std::map<std::string, Dataset> clean_store;
  clean_store["in"] = input;
  LocalCluster cluster(4, 2);
  ASSERT_TRUE(cluster.RunJob(stages, &clean_store).ok());

  for (int kill_after : {1, 2}) {
    CheckpointStore checkpoint;
    std::map<std::string, Dataset> store;
    store["in"] = input;
    JobOptions opts;
    opts.checkpoint = &checkpoint;
    opts.chaos_kill_after_stages = kill_after;
    auto killed = cluster.RunJob(stages, &store, opts);
    ASSERT_FALSE(killed.ok());
    EXPECT_NE(killed.status().message().find("chaos kill"), std::string::npos);
    EXPECT_EQ(checkpoint.num_stages(), static_cast<size_t>(kill_after));

    // The driver "dies"; a new run gets the external input again plus the
    // same checkpoint, and must reproduce the clean store exactly —
    // including intermediates the resumed stages consumed.
    std::map<std::string, Dataset> resumed_store;
    resumed_store["in"] = input;
    JobOptions resume_opts;
    resume_opts.checkpoint = &checkpoint;
    auto resumed = cluster.RunJob(stages, &resumed_store, resume_opts);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    const JobStats& stats = resumed.ValueOrDie();
    ASSERT_EQ(stats.stages.size(), stages.size());
    for (int i = 0; i < kill_after; ++i) {
      EXPECT_TRUE(stats.stages[i].recovered_from_checkpoint) << i;
    }
    EXPECT_FALSE(stats.stages.back().recovered_from_checkpoint);
    ExpectStoreEquals(clean_store, resumed_store);
  }
}

TEST(Checkpoint, SpillDirectorySurvivesDriverDeath) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "timr_ckpt_spill")
          .string();
  std::filesystem::remove_all(dir);

  const Dataset input = BigData(2000);
  const auto stages = ThreeStageJob();
  LocalCluster cluster(4, 2);

  std::map<std::string, Dataset> clean_store;
  clean_store["in"] = input;
  ASSERT_TRUE(cluster.RunJob(stages, &clean_store).ok());

  {
    CheckpointStore checkpoint(dir);
    std::map<std::string, Dataset> store;
    store["in"] = input;
    JobOptions opts;
    opts.checkpoint = &checkpoint;
    opts.chaos_kill_after_stages = 2;
    ASSERT_FALSE(cluster.RunJob(stages, &store, opts).ok());
  }  // checkpoint object destroyed: only the spill directory survives

  // A fresh CheckpointStore on the same directory recovers the manifest.
  CheckpointStore recovered(dir);
  EXPECT_EQ(recovered.num_stages(), 2u);
  std::map<std::string, Dataset> resumed_store;
  resumed_store["in"] = input;
  JobOptions opts;
  opts.checkpoint = &recovered;
  auto resumed = cluster.RunJob(stages, &resumed_store, opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectStoreEquals(clean_store, resumed_store);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, MismatchedStageListIsRejected) {
  CheckpointStore checkpoint;
  const Dataset input = MakeData({{1, 1, 0}});
  Dataset out = MakeData({{1, 1, 0}});
  ASSERT_TRUE(
      checkpoint.SaveStage(0, "sX", {{"mX", &out}}, {}).ok());
  std::map<std::string, Dataset> store;
  store["in"] = input;
  auto restored = checkpoint.Restore({"s1", "s2"}, &store);
  ASSERT_FALSE(restored.ok());
}

// ---------------------------------------------------------------------------
// AdaptiveSkew: sampled hot-key detection, deterministic salted splits, and
// the canonical coalesce (SkewPolicy, ROADMAP 5(b)).
// ---------------------------------------------------------------------------

SkewPolicy AggressiveSkewPolicy() {
  SkewPolicy policy;
  policy.adaptive_repartition = true;
  policy.skew_ratio_threshold = 2.0;
  policy.hot_key_fanout = 4;
  policy.min_partition_rows = 64;
  policy.sample_shift = 3;
  return policy;
}

/// Rows planting `num_hot` heavy keys that all collide in partition 0 of
/// `parts` (probed through the real key hash), over a uniform background of
/// singleton keys. The collision matters: a single hot key can only move as a
/// whole, but several colliding hot keys are exactly what the salted split
/// separates.
Dataset SkewedData(int parts, int num_hot, int rows_per_hot, int background) {
  auto hasher = MakeKeyHasher({{1}});
  std::vector<int64_t> hot;
  for (int64_t k = 0; static_cast<int>(hot.size()) < num_hot; ++k) {
    Row probe = {Value(int64_t{0}), Value(k), Value(int64_t{0})};
    if (hasher(0, probe) % static_cast<uint64_t>(parts) == 0) hot.push_back(k);
  }
  std::vector<Row> rows;
  int64_t t = 0;
  for (int64_t k : hot) {
    for (int i = 0; i < rows_per_hot; ++i) {
      rows.push_back({Value(t++), Value(k), Value(static_cast<int64_t>(i))});
    }
  }
  for (int i = 0; i < background; ++i) {
    rows.push_back(
        {Value(t++), Value(static_cast<int64_t>(1000 + i)), Value(int64_t{0})});
  }
  return Dataset::FromRows(RowSchema(), std::move(rows));
}

MRStage SkewedIdentityStage(int parts) {
  MRStage stage = IdentityStage("in", "out", 1);
  stage.num_partitions = parts;
  stage.key_hash_fn = MakeKeyHasher({{1}});
  return stage;
}

TEST(AdaptiveSkew, SplitsHotPartitionAndCoalescesExactly) {
  const int parts = 4;
  std::map<std::string, Dataset> store_off, store_on;
  store_off["in"] = SkewedData(parts, 3, 200, 200);
  store_on["in"] = SkewedData(parts, 3, 200, 200);

  LocalCluster cluster(parts, 2);
  MRStage stage = SkewedIdentityStage(parts);
  StageStats off_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store_off, &off_stats).ok());
  EXPECT_EQ(off_stats.partitions_split, 0);
  // The row-skew stats are recorded with the policy off too — they are the
  // detector's input and the observable that says a split would help.
  EXPECT_GT(off_stats.partition_rows_max, 0u);
  EXPECT_GT(off_stats.partition_rows_median, 0.0);
  EXPECT_GT(static_cast<double>(off_stats.partition_rows_max),
            2.0 * off_stats.partition_rows_median);

  stage.skew = AggressiveSkewPolicy();
  StageStats on_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store_on, &on_stats).ok());
  EXPECT_GE(on_stats.partitions_split, 1);
  EXPECT_GE(on_stats.hot_keys_detected, 3);
  EXPECT_EQ(on_stats.virtual_partitions,
            on_stats.partitions_split * stage.skew.hot_key_fanout);
  EXPECT_GT(on_stats.post_split_rows_ratio, 0.0);
  EXPECT_EQ(on_stats.rows_out, off_stats.rows_out);

  // The identity reducer emits its canonically sorted input, so the coalesced
  // split partitions must be *byte-identical* to the unsplit run's.
  const Dataset& off = store_off.at("out");
  const Dataset& on = store_on.at("out");
  ASSERT_EQ(off.num_partitions(), on.num_partitions());
  for (size_t p = 0; p < off.num_partitions(); ++p) {
    EXPECT_EQ(off.partition(p), on.partition(p)) << "partition " << p;
  }
}

TEST(AdaptiveSkew, DecisionsAndOutputStableAcrossThreadCounts) {
  const int parts = 4;
  MRStage stage = SkewedIdentityStage(parts);
  stage.skew = AggressiveSkewPolicy();

  Dataset reference;
  int ref_splits = -1;
  int ref_hot_keys = -1;
  for (int threads : {1, 2, 4}) {
    LocalCluster cluster(parts, threads);
    std::map<std::string, Dataset> store;
    store["in"] = SkewedData(parts, 3, 200, 200);
    StageStats stats;
    ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
    EXPECT_GE(stats.partitions_split, 1) << "threads=" << threads;
    if (ref_splits < 0) {
      ref_splits = stats.partitions_split;
      ref_hot_keys = stats.hot_keys_detected;
      reference = std::move(store.at("out"));
      continue;
    }
    // Split decisions are a pure function of the data: same partitions, same
    // hot keys, bit-identical output for any thread count.
    EXPECT_EQ(stats.partitions_split, ref_splits) << "threads=" << threads;
    EXPECT_EQ(stats.hot_keys_detected, ref_hot_keys) << "threads=" << threads;
    const Dataset& out = store.at("out");
    ASSERT_EQ(out.num_partitions(), reference.num_partitions());
    for (size_t p = 0; p < out.num_partitions(); ++p) {
      EXPECT_EQ(out.partition(p), reference.partition(p))
          << "threads=" << threads << " partition " << p;
    }
  }
}

TEST(AdaptiveSkew, UniformKeysNeverSplit) {
  const int parts = 4;
  std::vector<Row> rows;
  for (int64_t i = 0; i < 400; ++i) {
    rows.push_back({Value(i), Value(i % 97), Value(int64_t{0})});
  }
  std::map<std::string, Dataset> store;
  store["in"] = Dataset::FromRows(RowSchema(), std::move(rows));

  LocalCluster cluster(parts, 2);
  MRStage stage = SkewedIdentityStage(parts);
  stage.skew = AggressiveSkewPolicy();
  stage.skew.min_partition_rows = 1;
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_EQ(stats.partitions_split, 0);
  EXPECT_EQ(stats.hot_keys_detected, 0);
  EXPECT_EQ(stats.virtual_partitions, 0);
  EXPECT_EQ(stats.rows_out, 400u);
}

TEST(AdaptiveSkew, JobOptionsPolicyAppliesOnlyToKeyedStages) {
  const int parts = 4;
  std::map<std::string, Dataset> store;
  store["in"] = SkewedData(parts, 3, 200, 200);

  // Stage 1 carries a key hash (eligible); stage 2 is a single-partition
  // merge with no key hash (must be left alone by the job-wide policy).
  MRStage keyed = SkewedIdentityStage(parts);
  MRStage merge = IdentityStage("out", "merged", 1);
  merge.name = "merge";
  merge.partition_fn = SinglePartition();

  LocalCluster cluster(parts, 2);
  JobOptions options;
  options.skew = AggressiveSkewPolicy();
  auto run = cluster.RunJob({keyed, merge}, &store, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const JobStats& job = run.ValueOrDie();
  ASSERT_EQ(job.stages.size(), 2u);
  EXPECT_GE(job.stages[0].partitions_split, 1);
  EXPECT_EQ(job.stages[1].partitions_split, 0);
  EXPECT_EQ(job.stages[1].rows_out, job.stages[0].rows_out);
}

// ---------------------------------------------------------------------------
// Chaos: the full BT pipeline under randomized-but-replayable fault
// schedules. Every run must reproduce the fault-free output and store
// bit-for-bit (paper §III-C.1: deterministic re-execution makes failure
// handling invisible).
// ---------------------------------------------------------------------------

std::vector<uint64_t> ChaosSeeds() {
  if (const char* env = std::getenv("TIMR_CHAOS_SEEDS")) {
    std::vector<uint64_t> seeds;
    uint64_t v = 0;
    bool have = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        v = v * 10 + static_cast<uint64_t>(*c - '0');
        have = true;
      } else {
        if (have) seeds.push_back(v);
        v = 0;
        have = false;
        if (*c == '\0') break;
      }
    }
    if (!seeds.empty()) return seeds;
  }
  return {7, 19, 42};
}

TEST(Chaos, BtJobBitIdenticalUnderAllFaultKinds) {
  testutil::BtRun clean = testutil::RunBtJob(0);
  ASSERT_FALSE(clean.stats.stages.empty());

  for (uint64_t seed : ChaosSeeds()) {
    ChaosInjector injector(FaultPlan::AllKinds(seed, /*p=*/0.12,
                                               /*straggler_seconds=*/0.01));
    testutil::BtRunConfig cfg;
    cfg.injector = &injector;
    testutil::BtRun chaotic = testutil::RunBtJob(cfg);
    ASSERT_TRUE(chaotic.status.ok())
        << "seed " << seed << ": " << chaotic.status.ToString();
    EXPECT_GT(injector.total_injected(), 0) << "seed " << seed;
    testutil::ExpectEventsIdentical(clean.output, chaotic.output);
    testutil::ExpectStoresBitIdentical(clean.store, chaotic.store);
    int retries = 0;
    for (const auto& s : chaotic.stats.stages) retries += s.retried_tasks;
    EXPECT_GT(retries, 0) << "seed " << seed;
  }
}

TEST(Chaos, BtJobBitIdenticalUnderChaosWithSpeculation) {
  testutil::BtRun clean = testutil::RunBtJob(0);

  ChaosInjector injector(
      FaultPlan::AllKinds(ChaosSeeds().front(), 0.12, 0.01));
  testutil::BtRunConfig cfg;
  cfg.num_threads = 3;
  cfg.injector = &injector;
  cfg.options.fault_tolerance.speculative_execution = true;
  cfg.options.fault_tolerance.min_straggler_seconds = 0.25;
  testutil::BtRun chaotic = testutil::RunBtJob(cfg);
  ASSERT_TRUE(chaotic.status.ok()) << chaotic.status.ToString();
  testutil::ExpectEventsIdentical(clean.output, chaotic.output);
  testutil::ExpectStoresBitIdentical(clean.store, chaotic.store);
}

TEST(Chaos, BtJobWithExchangeElisionBitIdenticalUnderChaos) {
  // The elision-optimized plan (timr/optimizer.h) must survive the same
  // randomized fault schedules with the same answer: identical output to the
  // un-elided base job, and chaos runs bit-identical to the elided clean run.
  testutil::BtRun base = testutil::RunBtJob(0);

  testutil::BtRunConfig clean_cfg;
  clean_cfg.options.elide_redundant_exchanges = true;
  testutil::BtRun clean = testutil::RunBtJob(clean_cfg);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_LT(clean.stats.stages.size(), base.stats.stages.size());
  testutil::ExpectEventsIdentical(base.output, clean.output);

  for (uint64_t seed : ChaosSeeds()) {
    ChaosInjector injector(FaultPlan::AllKinds(seed, /*p=*/0.12,
                                               /*straggler_seconds=*/0.01));
    testutil::BtRunConfig cfg = clean_cfg;
    cfg.injector = &injector;
    testutil::BtRun chaotic = testutil::RunBtJob(cfg);
    ASSERT_TRUE(chaotic.status.ok())
        << "seed " << seed << ": " << chaotic.status.ToString();
    testutil::ExpectEventsIdentical(clean.output, chaotic.output);
    testutil::ExpectStoresBitIdentical(clean.store, chaotic.store);
  }
}

TEST(Chaos, AdaptiveSkewBtJobBitIdenticalUnderChaos) {
  // The Zipf-skewed BT pipeline with adaptive repartitioning on must survive
  // randomized fault schedules bit-identically: split decisions are data-pure,
  // retried/speculative attempts of a virtual partition reproduce their
  // output, and the coalesce is order-canonical. Against the policy-off run,
  // the output is the same relation (canonical order may differ, since an
  // unsplit reducer emits its rows in engine order).
  testutil::BtRunConfig off_cfg;
  off_cfg.workload = testutil::SkewedWorkload();
  testutil::BtRun off = testutil::RunBtJob(off_cfg);
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();

  testutil::BtRunConfig on_cfg = off_cfg;
  on_cfg.options.skew.adaptive_repartition = true;
  on_cfg.options.skew.skew_ratio_threshold = 2.0;
  on_cfg.options.skew.hot_key_fanout = 4;
  on_cfg.options.skew.min_partition_rows = 64;
  on_cfg.options.skew.sample_shift = 3;
  testutil::BtRun clean = testutil::RunBtJob(on_cfg);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  int splits = 0;
  for (const auto& s : clean.stats.stages) splits += s.partitions_split;
  EXPECT_GT(splits, 0) << "skewed workload did not trigger any split";

  std::vector<temporal::Event> off_sorted = off.output;
  std::vector<temporal::Event> on_sorted = clean.output;
  temporal::SortEventsCanonical(&off_sorted);
  temporal::SortEventsCanonical(&on_sorted);
  testutil::ExpectEventsIdentical(off_sorted, on_sorted);

  for (uint64_t seed : ChaosSeeds()) {
    ChaosInjector injector(FaultPlan::AllKinds(seed, /*p=*/0.12,
                                               /*straggler_seconds=*/0.01));
    testutil::BtRunConfig cfg = on_cfg;
    cfg.injector = &injector;
    testutil::BtRun chaotic = testutil::RunBtJob(cfg);
    ASSERT_TRUE(chaotic.status.ok())
        << "seed " << seed << ": " << chaotic.status.ToString();
    testutil::ExpectEventsIdentical(clean.output, chaotic.output);
    testutil::ExpectStoresBitIdentical(clean.store, chaotic.store);
  }
}

TEST(Chaos, ResumeAfterKillBetweenEveryPairOfStages) {
  testutil::BtRun clean = testutil::RunBtJob(0);
  const int num_stages = static_cast<int>(clean.stats.stages.size());
  ASSERT_GT(num_stages, 1);
  const uint64_t seed = ChaosSeeds().front();

  for (int kill_after = 1; kill_after < num_stages; ++kill_after) {
    CheckpointStore checkpoint;
    {
      ChaosInjector injector(FaultPlan::AllKinds(seed, 0.12, 0.01));
      testutil::BtRunConfig cfg;
      cfg.injector = &injector;
      cfg.options.checkpoint = &checkpoint;
      cfg.options.chaos_kill_after_stages = kill_after;
      testutil::BtRun killed = testutil::RunBtJob(cfg);
      ASSERT_FALSE(killed.status.ok()) << "kill_after=" << kill_after;
      EXPECT_NE(killed.status.message().find("chaos kill"), std::string::npos);
    }
    ASSERT_EQ(checkpoint.num_stages(), static_cast<size_t>(kill_after));

    // Resume (chaos still on) and demand the fault-free result exactly.
    ChaosInjector injector(FaultPlan::AllKinds(seed, 0.12, 0.01));
    testutil::BtRunConfig cfg;
    cfg.injector = &injector;
    cfg.options.checkpoint = &checkpoint;
    testutil::BtRun resumed = testutil::RunBtJob(cfg);
    ASSERT_TRUE(resumed.status.ok())
        << "kill_after=" << kill_after << ": " << resumed.status.ToString();
    for (int i = 0; i < kill_after; ++i) {
      EXPECT_TRUE(resumed.stats.stages[i].recovered_from_checkpoint);
    }
    testutil::ExpectEventsIdentical(clean.output, resumed.output);
    testutil::ExpectStoresBitIdentical(clean.store, resumed.store);
  }
}

}  // namespace
}  // namespace timr::mr
