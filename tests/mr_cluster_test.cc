// Map-reduce substrate tests: partitioning, canonical shuffle order,
// multi-input stages, failure injection, stats, and error paths.

#include <gtest/gtest.h>

#include "mr/cluster.h"

namespace timr::mr {
namespace {

Schema RowSchema() {
  return Schema::Of({{"Time", ValueType::kInt64},
                     {"Key", ValueType::kInt64},
                     {"Val", ValueType::kInt64}});
}

Dataset MakeData(std::vector<std::tuple<int64_t, int64_t, int64_t>> rows) {
  std::vector<Row> out;
  for (auto& [t, k, v] : rows) out.push_back({Value(t), Value(k), Value(v)});
  return Dataset::FromRows(RowSchema(), std::move(out));
}

MRStage IdentityStage(std::string in, std::string out, int key_col) {
  MRStage stage;
  stage.name = "identity";
  stage.inputs = {std::move(in)};
  stage.output = std::move(out);
  stage.output_schema = RowSchema();
  stage.partition_fn = HashPartitioner({{key_col}});
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    *output = inputs[0];
    return Status::OK();
  };
  return stage;
}

TEST(Cluster, HashPartitioningGroupsKeysTogether) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 7, 0}, {2, 7, 1}, {3, 9, 2}, {4, 7, 3}});

  MRStage stage = IdentityStage("in", "out", 1);
  stage.reducer = [](int p, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    // All rows of one key must land in the same partition: report
    // (partition, key) pairs.
    for (const Row& r : inputs[0]) {
      output->push_back({Value(int64_t{p}), r[1], Value(int64_t{0})});
    }
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  std::map<int64_t, std::set<int64_t>> partitions_of_key;
  for (const Row& r : store.at("out").Gather()) {
    partitions_of_key[r[1].AsInt64()].insert(r[0].AsInt64());
  }
  EXPECT_EQ(partitions_of_key[7].size(), 1u);
  EXPECT_EQ(partitions_of_key[9].size(), 1u);
  EXPECT_EQ(stats.rows_in, 4u);
  EXPECT_EQ(stats.rows_out, 4u);
}

TEST(Cluster, ReducerInputSortedByTimeCanonically) {
  LocalCluster cluster(1, 1);
  std::map<std::string, Dataset> store;
  // Deliberately unsorted, with a timestamp tie broken by row content.
  store["in"] = MakeData({{5, 1, 9}, {2, 1, 3}, {5, 1, 1}, {1, 1, 0}});

  MRStage stage = IdentityStage("in", "out", 1);
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  auto rows = store.at("out").Gather();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[1][0].AsInt64(), 2);
  EXPECT_EQ(rows[2][0].AsInt64(), 5);
  EXPECT_EQ(rows[2][2].AsInt64(), 1);  // tie: smaller payload first
  EXPECT_EQ(rows[3][2].AsInt64(), 9);
}

TEST(Cluster, MultiInputStageDeliversPerInputRows) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["a"] = MakeData({{1, 1, 10}});
  store["b"] = MakeData({{2, 1, 20}, {3, 1, 30}});

  MRStage stage;
  stage.name = "multi";
  stage.inputs = {"a", "b"};
  stage.output = "out";
  stage.output_schema = RowSchema();
  stage.partition_fn = HashPartitioner({{1}, {1}});
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    output->push_back({Value(int64_t{0}),
                       Value(static_cast<int64_t>(inputs[0].size())),
                       Value(static_cast<int64_t>(inputs[1].size()))});
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  int64_t a_total = 0, b_total = 0;
  for (const Row& r : store.at("out").Gather()) {
    a_total += r[1].AsInt64();
    b_total += r[2].AsInt64();
  }
  EXPECT_EQ(a_total, 1);
  EXPECT_EQ(b_total, 2);
}

TEST(Cluster, ReplicatingPartitionerDuplicatesRows) {
  LocalCluster cluster(3, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}});

  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row&, int parts, std::vector<int>* t) {
    for (int i = 0; i < parts; ++i) t->push_back(i);  // broadcast
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_EQ(stats.rows_shuffled, 6u);
  EXPECT_EQ(store.at("out").TotalRows(), 6u);
}

TEST(Cluster, FailureInjectionRestartsAndMatches) {
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 1}, {3, 3, 2}, {4, 4, 3}});

  LocalCluster cluster(4, 2);
  MRStage stage = IdentityStage("in", "out", 1);
  StageStats clean_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &clean_stats).ok());
  auto clean = store.at("out").Gather();

  FailureInjector injector;
  injector.FailOnce("identity", 0);
  injector.FailOnce("identity", 3);
  cluster.set_failure_injector(&injector);
  stage.output = "out2";
  StageStats retry_stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &retry_stats).ok());
  EXPECT_TRUE(injector.empty());
  EXPECT_EQ(retry_stats.restarted_tasks, 2);
  EXPECT_EQ(store.at("out2").Gather(), clean);
}

TEST(Cluster, MissingInputDatasetIsKeyError) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  StageStats stats;
  Status st = cluster.RunStage(IdentityStage("nope", "out", 1), &store, &stats);
  EXPECT_EQ(st.code(), StatusCode::kKeyError);
}

TEST(Cluster, OutOfRangePartitionTargetIsError) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row&, int, std::vector<int>* t) {
    t->push_back(99);
  };
  StageStats stats;
  EXPECT_FALSE(cluster.RunStage(stage, &store, &stats).ok());
}

TEST(Cluster, ReducerErrorPropagates) {
  LocalCluster cluster(2, 1);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.reducer = [](int, const std::vector<std::vector<Row>>&,
                     std::vector<Row>*) {
    return Status::ExecutionError("boom");
  };
  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
}

TEST(Cluster, JobRunsStagesInOrder) {
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 1}, {2, 2, 2}});
  MRStage s1 = IdentityStage("in", "mid", 1);
  s1.name = "s1";
  MRStage s2 = IdentityStage("mid", "out", 1);
  s2.name = "s2";
  auto stats = cluster.RunJob({s1, s2}, &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().stages.size(), 2u);
  EXPECT_EQ(store.at("out").TotalRows(), 2u);
  EXPECT_GE(stats.ValueOrDie().TotalSimulatedSeconds(), 0.0);
}

// Synthetic data big enough that the map phase splits into several morsels.
Dataset BigData(int n) {
  std::vector<Row> rows;
  uint64_t x = 88172645463325252ull;  // xorshift64: deterministic "random" keys
  for (int i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({Value(static_cast<int64_t>(x % 1000)),
                    Value(static_cast<int64_t>(x % 97)),
                    Value(static_cast<int64_t>(i))});
  }
  return Dataset::FromRows(RowSchema(), std::move(rows));
}

TEST(Cluster, ShuffleIsDeterministicAcrossThreadCounts) {
  // The same stage must produce bit-identical datasets and stats for any
  // host thread count — the repeatability guarantee the reducers rely on.
  auto run = [](int num_threads) {
    LocalCluster cluster(8, num_threads);
    std::map<std::string, Dataset> store;
    store["in"] = BigData(20000);
    MRStage stage = IdentityStage("in", "out", 1);
    // Replicate some rows so the multi-target path is exercised too.
    stage.partition_fn = [](int, const Row& row, int parts,
                            std::vector<int>* t) {
      const int64_t k = row[1].AsInt64();
      t->push_back(static_cast<int>(k % parts));
      if (k % 5 == 0) t->push_back(static_cast<int>((k + 1) % parts));
    };
    StageStats stats;
    Status st = cluster.RunStage(stage, &store, &stats);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return std::make_pair(std::move(store), stats);
  };

  auto [store1, stats1] = run(1);
  for (int threads : {2, 5, 0 /* hardware */}) {
    auto [storeN, statsN] = run(threads);
    EXPECT_EQ(statsN.rows_in, stats1.rows_in);
    EXPECT_EQ(statsN.rows_shuffled, stats1.rows_shuffled);
    EXPECT_EQ(statsN.rows_out, stats1.rows_out);
    const Dataset& a = store1.at("out");
    const Dataset& b = storeN.at("out");
    ASSERT_EQ(a.num_partitions(), b.num_partitions());
    for (size_t p = 0; p < a.num_partitions(); ++p) {
      EXPECT_EQ(a.partition(p), b.partition(p)) << "partition " << p
                                                << ", threads=" << threads;
    }
  }
}

TEST(Cluster, PerPhaseStatsArePopulated) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(5000);
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(IdentityStage("in", "out", 1), &store, &stats)
                  .ok());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.map_shuffle_seconds, 0.0);
  EXPECT_GT(stats.sort_seconds, 0.0);
  EXPECT_GT(stats.reduce_seconds, 0.0);
  // Phases are disjoint sub-intervals of the stage's wall time.
  EXPECT_LE(stats.map_shuffle_seconds + stats.sort_seconds +
                stats.reduce_seconds,
            stats.wall_seconds + 1e-6);
  JobStats job;
  job.stages.push_back(stats);
  EXPECT_NE(job.ToString().find("map="), std::string::npos);
  EXPECT_NE(job.ToString().find("sort="), std::string::npos);
  EXPECT_NE(job.ToString().find("reduce="), std::string::npos);
}

TEST(Cluster, ConsumableInputIsMovedAndReleased) {
  LocalCluster cluster(4, 2);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(4000);
  const auto expected = [&] {
    std::map<std::string, Dataset> copy_store;
    copy_store["in"] = store.at("in");
    LocalCluster c2(4, 1);
    StageStats s;
    MRStage stage = IdentityStage("in", "out", 1);
    EXPECT_TRUE(c2.RunStage(stage, &copy_store, &s).ok());
    return copy_store.at("out").Gather();
  }();

  MRStage stage = IdentityStage("in", "out", 1);
  stage.consumable_inputs = {0};
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  // Output is identical to the copying path...
  EXPECT_EQ(store.at("out").Gather(), expected);
  // ...and the consumed input's partitions were released.
  EXPECT_EQ(store.at("in").TotalRows(), 0u);
  EXPECT_EQ(store.at("in").num_partitions(), 1u);  // shape & schema survive
}

TEST(Cluster, ConsumableIgnoredForDuplicateInputName) {
  // A self-join reads the same dataset through two input indices: consuming
  // either would corrupt the other, so the hint must be ignored.
  LocalCluster cluster(2, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 10}, {2, 2, 20}});

  MRStage stage;
  stage.name = "selfjoin";
  stage.inputs = {"in", "in"};
  stage.output = "out";
  stage.output_schema = RowSchema();
  stage.num_partitions = 1;
  stage.partition_fn = SinglePartition();
  stage.consumable_inputs = {0, 1};
  stage.reducer = [](int, const std::vector<std::vector<Row>>& inputs,
                     std::vector<Row>* output) {
    output->push_back({Value(int64_t{0}),
                       Value(static_cast<int64_t>(inputs[0].size())),
                       Value(static_cast<int64_t>(inputs[1].size()))});
    return Status::OK();
  };
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  const Row& r = store.at("out").partition(0)[0];
  EXPECT_EQ(r[1].AsInt64(), 2);  // both sides saw both rows
  EXPECT_EQ(r[2].AsInt64(), 2);
  EXPECT_EQ(store.at("in").TotalRows(), 2u);  // source intact
}

TEST(Cluster, OutOfRangeTargetErrorsUnderParallelMap) {
  LocalCluster cluster(2, 4);
  std::map<std::string, Dataset> store;
  store["in"] = BigData(10000);
  MRStage stage = IdentityStage("in", "out", 1);
  stage.partition_fn = [](int, const Row& row, int, std::vector<int>* t) {
    t->push_back(row[2].AsInt64() == 7777 ? 99 : 0);
  };
  StageStats stats;
  Status st = cluster.RunStage(stage, &store, &stats);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_NE(st.ToString().find("out of range"), std::string::npos);
}

TEST(Cluster, SinglePartitionFunnelsEverything) {
  LocalCluster cluster(8, 2);
  std::map<std::string, Dataset> store;
  store["in"] = MakeData({{1, 1, 0}, {2, 2, 0}, {3, 3, 0}});
  MRStage stage = IdentityStage("in", "out", 1);
  stage.num_partitions = 1;
  stage.partition_fn = SinglePartition();
  StageStats stats;
  ASSERT_TRUE(cluster.RunStage(stage, &store, &stats).ok());
  EXPECT_EQ(stats.partitions, 1);
  EXPECT_EQ(store.at("out").partition(0).size(), 3u);
}

}  // namespace
}  // namespace timr::mr
