// Shared helpers for tests that run the full BT pipeline through TiMR on a
// LocalCluster: a small-but-complete workload, a one-call job runner with
// fault-injection / checkpoint / chaos hooks, and bit-identity comparators
// for outputs and whole dataset stores (the §III-C.1 repeatability checks).

#pragma once

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bt/queries.h"
#include "mr/cluster.h"
#include "temporal/convert.h"
#include "timr/timr.h"
#include "workload/generator.h"

namespace timr::testutil {

inline workload::GeneratorConfig SmallWorkload() {
  workload::GeneratorConfig cfg;
  cfg.num_users = 150;
  cfg.vocab_size = 2000;
  cfg.duration = 2 * temporal::kDay;
  return cfg;
}

inline bt::BtQueryConfig SmallBtConfig() {
  bt::BtQueryConfig cfg;
  cfg.selection_period = 3 * temporal::kDay;
  cfg.bot_search_threshold = 60;
  cfg.bot_click_threshold = 30;
  return cfg;
}

/// A Zipf-skewed variant of the small workload, reproducible from
/// (seed, zipf_s): a handful of head users dominate the log, so the keyed
/// user-hash shuffles develop a hot partition — the input the adaptive
/// repartitioning tests and bench_skew exercise. Bot multipliers are neutral
/// so the skew profile is exactly the Zipf weights (the forced bot at user 0
/// would otherwise stack a 25x multiplier on the Zipf-heaviest key).
inline workload::GeneratorConfig SkewedWorkload(uint64_t seed = 20120401,
                                                double zipf_s = 1.1) {
  workload::GeneratorConfig cfg = SmallWorkload();
  cfg.seed = seed;
  cfg.user_activity_zipf = zipf_s;
  cfg.bot_activity_multiplier = 1.0;
  cfg.bot_impression_multiplier = 1.0;
  return cfg;
}

struct BtRun {
  Status status;  // RunPlan outcome (chaos-kill runs fail by design)
  std::vector<temporal::Event> output;
  mr::JobStats stats;
  std::map<std::string, mr::Dataset> store;
};

struct BtRunConfig {
  int num_threads = 0;  // 0 = hardware
  mr::FaultInjector* injector = nullptr;
  framework::TimrOptions options;  // fault_tolerance / checkpoint / chaos kill
  /// Workload to generate (default: SmallWorkload(); tests exercising skew
  /// pass SkewedWorkload(...)).
  workload::GeneratorConfig workload = SmallWorkload();
};

/// Generate the configured BT log, run the standard BT feature pipeline
/// through TiMR, and hand back output, stats, and the final store. The store
/// is returned even on failure so kill-resume tests can inspect it.
inline BtRun RunBtJob(const BtRunConfig& cfg) {
  auto log = workload::GenerateBtLog(cfg.workload);

  mr::LocalCluster cluster(/*num_machines=*/8, cfg.num_threads);
  if (cfg.injector != nullptr) cluster.set_fault_injector(cfg.injector);

  std::map<std::string, mr::Dataset> store;
  auto rows = temporal::RowsFromEvents(log.events, false).ValueOrDie();
  store[bt::kBtInput] =
      mr::Dataset::FromRows(temporal::PointRowSchema(bt::UnifiedSchema()), rows);

  auto run = framework::RunPlan(
      &cluster,
      bt::BtFeaturePipeline(SmallBtConfig(), bt::Annotation::kStandard).node(),
      &store, cfg.options);

  BtRun result;
  result.status = run.status();
  if (run.ok()) {
    result.output = std::move(run.ValueOrDie().output);
    result.stats = std::move(run.ValueOrDie().job_stats);
  }
  result.store = std::move(store);
  return result;
}

/// Back-compat convenience: asserts the run succeeded.
inline BtRun RunBtJob(int num_threads, mr::FaultInjector* injector = nullptr,
                      size_t engine_batch_size = 0) {
  BtRunConfig cfg;
  cfg.num_threads = num_threads;
  cfg.injector = injector;
  cfg.options.engine_batch_size = engine_batch_size;
  BtRun run = RunBtJob(cfg);
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  return run;
}

inline void ExpectEventsIdentical(const std::vector<temporal::Event>& a,
                                  const std::vector<temporal::Event>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].le, b[i].le) << "event " << i;
    EXPECT_EQ(a[i].re, b[i].re) << "event " << i;
    EXPECT_EQ(a[i].payload, b[i].payload) << "event " << i;
  }
}

inline void ExpectStoresBitIdentical(
    const std::map<std::string, mr::Dataset>& a,
    const std::map<std::string, mr::Dataset>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, da] : a) {
    auto it = b.find(name);
    ASSERT_NE(it, b.end()) << "dataset " << name << " missing";
    const mr::Dataset& db = it->second;
    EXPECT_EQ(da.schema(), db.schema()) << name;
    ASSERT_EQ(da.num_partitions(), db.num_partitions()) << name;
    for (size_t p = 0; p < da.num_partitions(); ++p) {
      EXPECT_EQ(da.partition(p), db.partition(p))
          << "dataset " << name << " partition " << p;
    }
  }
}

}  // namespace timr::testutil
